//! The experiment suite: one function per table and figure of the paper.
//!
//! Every experiment *measures* the reproduction (it runs the functional
//! call paths and reads the virtual clock, the meters, the copy logs or
//! the workload generators) and renders a report comparing the measured
//! values with the numbers printed in the paper.

use firefly::contention::{simulate_throughput, CallProfile, ResourceId, ResourcePlan, Seg};
use firefly::cost::CostModel;
use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::stubgen::compile;
use idl::stubvm::{LocalFrame, OobStore, StubVm};
use idl::wire::Value;
use msgrpc::MsgRpcCost;
use workload::{ActivityModel, Histogram, PopularityModel, SizeDistribution};

use crate::common::{format_table, four_tests, LrpcEnv, MsgEnv};

/// One second of virtual time.
const SECOND: Nanos = Nanos::from_secs(1);

// ---------------------------------------------------------------------
// Table 1 — Frequency of remote activity.
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// System name.
    pub system: String,
    /// Percentage measured from the sampled operation stream.
    pub measured_percent: f64,
    /// Percentage printed in the paper.
    pub paper_percent: f64,
}

/// Regenerates Table 1 by sampling each activity model and counting the
/// way an instrumented kernel would.
pub fn table1() -> Vec<Table1Row> {
    let paper = [3.0, 5.3, 0.6];
    ActivityModel::table_1_systems()
        .iter()
        .zip(paper)
        .map(|(m, paper_percent)| {
            // Sample a large stream and recompute with the model's own
            // percentage arithmetic.
            let ops = m.sample(0x1989, 500_000);
            let (local, remote) = workload::count_ops(&ops);
            let measured = match m.basis {
                workload::PercentBasis::OfTotal => 100.0 * remote as f64 / (local + remote) as f64,
                workload::PercentBasis::OfLocal => 100.0 * remote as f64 / local as f64,
            };
            Table1Row {
                system: m.system.to_string(),
                measured_percent: measured,
                paper_percent,
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                format!("{:.1}%", r.measured_percent),
                format!("{:.1}%", r.paper_percent),
            ]
        })
        .collect();
    format!(
        "Table 1: Frequency of Remote Activity\n{}",
        format_table(&["Operating System", "Measured (sampled)", "Paper"], &body)
    )
}

// ---------------------------------------------------------------------
// Figure 1 — RPC size distribution.
// ---------------------------------------------------------------------

/// The regenerated Figure 1.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Histogram over the paper's x-axis buckets.
    pub histogram: Histogram,
    /// Cumulative share at each bucket edge.
    pub cumulative: Vec<f64>,
    /// Calls sampled (the paper's N).
    pub total_calls: u64,
    /// Largest sampled transfer.
    pub max_bytes: u32,
}

/// Regenerates Figure 1 by sampling the size distribution for the paper's
/// 1,487,105 calls.
pub fn figure1() -> Figure1 {
    let dist = SizeDistribution::figure_1();
    let samples = dist.sample(0x1989, workload::FIGURE_1_TOTAL_CALLS as usize);
    let histogram = Histogram::figure_1_buckets(&samples);
    let cumulative = histogram.cumulative();
    let max_bytes = samples.iter().copied().max().unwrap_or(0);
    Figure1 {
        histogram,
        cumulative,
        total_calls: samples.len() as u64,
        max_bytes,
    }
}

/// Renders Figure 1 as a text histogram.
pub fn render_figure1(f: &Figure1) -> String {
    let mut rows = Vec::new();
    let max_count = f.histogram.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in f.histogram.counts.iter().enumerate() {
        let lo = f.histogram.edges[i];
        let hi = f.histogram.edges[i + 1];
        let bar_len = (count * 40 / max_count) as usize;
        rows.push(vec![
            format!("{lo}-{hi}"),
            format!("{count}"),
            format!("{:.1}%", f.cumulative[i] * 100.0),
            "#".repeat(bar_len),
        ]);
    }
    format!(
        "Figure 1: RPC Size Distribution ({} calls, max single = {} bytes)\n{}\n\
         paper: mode < 50 bytes, majority < 200 bytes, max ~1448 bytes\n",
        f.total_calls,
        f.max_bytes,
        format_table(&["Bytes", "Calls", "Cumulative", ""], &rows)
    )
}

// ---------------------------------------------------------------------
// Section 2.2 — static and dynamic interface statistics.
// ---------------------------------------------------------------------

/// The regenerated Section 2.2 statistics.
#[derive(Clone, Debug)]
pub struct Sec22 {
    /// Static corpus statistics.
    pub stats: workload::CorpusStats,
    /// Measured share of calls to the top three procedures.
    pub top3_share: f64,
    /// Measured share of calls to the top ten procedures.
    pub top10_share: f64,
    /// Distinct procedures called.
    pub distinct_called: usize,
}

/// Regenerates the Section 2.2 statistics from the synthetic corpus and
/// the popularity model.
pub fn sec22() -> Sec22 {
    let corpus = workload::generate_corpus();
    let stats = workload::measure(&corpus);
    let pop = PopularityModel::section_2_2();
    let calls = pop.sample(0x1989, 500_000);
    let mut counts = vec![0u64; pop.called()];
    for c in &calls {
        counts[*c] += 1;
    }
    let total = calls.len() as f64;
    let top3: u64 = counts[..3].iter().sum();
    let top10: u64 = counts[..10].iter().sum();
    Sec22 {
        stats,
        top3_share: top3 as f64 / total,
        top10_share: top10 as f64 / total,
        distinct_called: counts.iter().filter(|&&c| c > 0).count(),
    }
}

/// Renders the Section 2.2 report.
pub fn render_sec22(s: &Sec22) -> String {
    let rows = vec![
        vec!["services".into(), s.stats.services.to_string(), "28".into()],
        vec![
            "procedures".into(),
            s.stats.procedures.to_string(),
            "366".into(),
        ],
        vec![
            "parameters".into(),
            s.stats.parameters.to_string(),
            ">1000".into(),
        ],
        vec![
            "fixed-size parameters".into(),
            format!("{:.0}%", s.stats.fixed_param_share * 100.0),
            "80% (4 out of 5)".into(),
        ],
        vec![
            "parameters <= 4 bytes".into(),
            format!("{:.0}%", s.stats.small_param_share * 100.0),
            "65%".into(),
        ],
        vec![
            "all-fixed procedures".into(),
            format!("{:.0}%", s.stats.all_fixed_proc_share * 100.0),
            "67% (two-thirds)".into(),
        ],
        vec![
            "procedures <= 32 bytes".into(),
            format!("{:.0}%", s.stats.small_transfer_proc_share * 100.0),
            "60%".into(),
        ],
        vec![
            "calls to top 3 procedures".into(),
            format!("{:.1}%", s.top3_share * 100.0),
            "75%".into(),
        ],
        vec![
            "calls to top 10 procedures".into(),
            format!("{:.1}%", s.top10_share * 100.0),
            "95%".into(),
        ],
        vec![
            "distinct procedures called".into(),
            s.distinct_called.to_string(),
            "112".into(),
        ],
    ];
    format!(
        "Section 2.2: Parameter Size and Complexity\n{}",
        format_table(&["Statistic", "Measured", "Paper"], &rows)
    )
}

// ---------------------------------------------------------------------
// Table 2 — cross-domain performance of six systems.
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// System name.
    pub system: String,
    /// Processor name.
    pub processor: String,
    /// Theoretical minimum (µs).
    pub minimum_us: f64,
    /// Measured Null time (µs).
    pub measured_us: f64,
    /// Paper's Null time (µs).
    pub paper_us: f64,
    /// Measured overhead (µs).
    pub overhead_us: f64,
}

/// Regenerates Table 2 by running the Null call through each system's
/// message path on its own simulated processor.
pub fn table2() -> Vec<Table2Row> {
    let paper = [2300.0, 464.0, 754.0, 730.0, 800.0, 1590.0];
    MsgRpcCost::table_2_systems()
        .iter()
        .zip(paper)
        .map(|(cost, paper_us)| {
            let env = MsgEnv::new(*cost);
            let measured = env.steady_latency("Null", &[]).as_micros_f64();
            let minimum = cost.hw.theoretical_minimum().as_micros_f64();
            Table2Row {
                system: cost.name.to_string(),
                processor: cost.hw.name.to_string(),
                minimum_us: minimum,
                measured_us: measured,
                paper_us,
                overhead_us: measured - minimum,
            }
        })
        .collect()
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.processor.clone(),
                format!("{:.0}", r.minimum_us),
                format!("{:.0}", r.measured_us),
                format!("{:.0}", r.paper_us),
                format!("{:.0}", r.overhead_us),
            ]
        })
        .collect();
    format!(
        "Table 2: Cross-Domain Performance (microseconds)\n{}",
        format_table(
            &[
                "System",
                "Processor",
                "Null (minimum)",
                "Null (measured)",
                "Null (paper)",
                "Overhead"
            ],
            &body
        )
    )
}

// ---------------------------------------------------------------------
// Table 3 — copy operations.
// ---------------------------------------------------------------------

/// The regenerated Table 3.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// `(row, lrpc, message passing, restricted message passing)` letter
    /// strings, observed from real calls.
    pub rows: Vec<(String, String, String, String)>,
    /// Total copies when immutability matters: (LRPC, MP, RMP).
    pub totals: (usize, usize, usize),
}

/// Regenerates Table 3 by making real calls through all three transports
/// and reading their copy logs.
pub fn table3() -> Table3 {
    const COPY_IDL: &str = r#"
        interface Copies {
            procedure Mutable(data: in bytes[200] noninterpreted);
            procedure Immutable(data: in var bytes[200]);
            procedure Returns() -> int32;
        }
    "#;

    // LRPC.
    let lrpc_env = {
        use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
        let kernel = kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor());
        let rt = LrpcRuntime::with_config(
            kernel,
            RuntimeConfig {
                domain_caching: false,
                ..RuntimeConfig::default()
            },
        );
        let server = rt.kernel().create_domain("copy-server");
        let handlers: Vec<Handler> = vec![
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(0)))),
        ];
        rt.export(&server, COPY_IDL, handlers).expect("export");
        let client = rt.kernel().create_domain("copy-client");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Copies").expect("import");
        (rt, thread, binding)
    };
    let lrpc_letters = |proc: &str, args: &[Value]| -> String {
        lrpc_env
            .2
            .call(0, &lrpc_env.1, proc, args)
            .expect("lrpc call")
            .copies
            .letters_string()
    };

    // Message passing (full copy) and restricted message passing.
    let msg_letters = |cost: MsgRpcCost, proc: &str, args: &[Value]| -> String {
        let machine = firefly::cpu::Machine::new(1, CostModel::with_hw(cost.hw));
        let kernel = kernel::kernel::Kernel::new(machine);
        let system = msgrpc::MsgRpcSystem::new(kernel, cost);
        let sd = system.kernel().create_domain("s");
        let handlers: Vec<msgrpc::MsgHandler> = vec![
            Box::new(|_: &[Value]| Ok(lrpc::Reply::none())),
            Box::new(|_: &[Value]| Ok(lrpc::Reply::none())),
            Box::new(|_: &[Value]| Ok(lrpc::Reply::value(Value::Int32(0)))),
        ];
        let server = system.export(&sd, COPY_IDL, handlers, 1).unwrap();
        let client = system.kernel().create_domain("c");
        let thread = system.kernel().spawn_thread(&client);
        system
            .call(&client, &thread, &server, 0, proc, args)
            .expect("msg call")
            .copies
            .letters_string()
    };

    let payload = vec![0u8; 200];
    let mutable_args = vec![Value::Bytes(payload.clone())];
    let immutable_args = vec![Value::Var(payload)];

    let full = MsgRpcCost::mach_cvax();
    let restricted = MsgRpcCost::dash_68020();

    let rows = vec![
        (
            "call (mutable parameters)".to_string(),
            lrpc_letters("Mutable", &mutable_args),
            msg_letters(full, "Mutable", &mutable_args),
            msg_letters(restricted, "Mutable", &mutable_args),
        ),
        (
            "call (immutable parameters)".to_string(),
            lrpc_letters("Immutable", &immutable_args),
            msg_letters(full, "Immutable", &immutable_args),
            msg_letters(restricted, "Immutable", &immutable_args),
        ),
        (
            "return".to_string(),
            lrpc_letters("Returns", &[]),
            msg_letters(full, "Returns", &[]),
            msg_letters(restricted, "Returns", &[]),
        ),
    ];

    // Total copies when immutability matters: immutable call + return.
    let count = |letters: &str| letters.len();
    let totals = (
        count(&rows[1].1) + count(&rows[2].1),
        count(&rows[1].2) + count(&rows[2].2),
        count(&rows[1].3) + count(&rows[2].3),
    );
    Table3 { rows, totals }
}

/// Renders Table 3.
pub fn render_table3(t: &Table3) -> String {
    let body: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|(row, l, m, r)| vec![row.clone(), l.clone(), m.clone(), r.clone()])
        .collect();
    format!(
        "Table 3: Copy Operations For LRPC Vs. Message-Based RPC (observed)\n{}\n\
         totals with immutable parameters: LRPC {} vs message passing {} vs restricted {}\n\
         paper: A / AE / F vs ABCE / ABCE / BCF vs ADE / ADE / BF; totals 3 vs 7 vs 5\n",
        format_table(
            &["Operation", "LRPC", "Message Passing", "Restricted MP"],
            &body
        ),
        t.totals.0,
        t.totals.1,
        t.totals.2
    )
}

// ---------------------------------------------------------------------
// Table 4 — the four tests.
// ---------------------------------------------------------------------

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Test name.
    pub test: String,
    /// LRPC with the idle-processor optimization (µs).
    pub lrpc_mp_us: f64,
    /// Serial LRPC (µs).
    pub lrpc_us: f64,
    /// Taos SRC RPC (µs).
    pub taos_us: f64,
    /// Paper's three values.
    pub paper: (f64, f64, f64),
}

/// Regenerates Table 4 by running the four tests through serial LRPC,
/// LRPC with domain caching, and the SRC RPC baseline.
pub fn table4() -> Vec<Table4Row> {
    let paper = [
        (125.0, 157.0, 464.0),
        (130.0, 164.0, 480.0),
        (173.0, 192.0, 539.0),
        (219.0, 227.0, 636.0),
    ];
    let serial = LrpcEnv::new(1, false);
    let mp = LrpcEnv::new(2, true);
    let taos = MsgEnv::new(MsgRpcCost::src_rpc_taos());
    four_tests()
        .into_iter()
        .zip(paper)
        .map(|((test, args), paper)| Table4Row {
            test: test.to_string(),
            lrpc_mp_us: mp.steady_latency_mp(test, &args).as_micros_f64(),
            lrpc_us: serial.steady_latency(test, &args).as_micros_f64(),
            taos_us: taos.steady_latency(test, &args).as_micros_f64(),
            paper,
        })
        .collect()
}

/// Renders Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.test.clone(),
                format!("{:.0} ({:.0})", r.lrpc_mp_us, r.paper.0),
                format!("{:.0} ({:.0})", r.lrpc_us, r.paper.1),
                format!("{:.0} ({:.0})", r.taos_us, r.paper.2),
            ]
        })
        .collect();
    format!(
        "Table 4: LRPC Performance of Four Tests, microseconds — measured (paper)\n{}",
        format_table(&["Test", "LRPC/MP", "LRPC", "Taos"], &body)
    )
}

// ---------------------------------------------------------------------
// Table 5 — breakdown of the Null LRPC.
// ---------------------------------------------------------------------

/// The regenerated Table 5.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// `(row, minimum µs, lrpc overhead µs)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Total measured Null time (µs).
    pub total_us: f64,
    /// TLB misses observed during the call.
    pub tlb_misses: u64,
    /// Share of call time attributable to TLB refills.
    pub tlb_share: f64,
}

/// Regenerates Table 5 from a metered serial Null call.
pub fn table5() -> Table5 {
    let env = LrpcEnv::new(1, false);
    // Two warmups so the TLB and E-stack associations reach steady state.
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let out = env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let m = &out.meter;
    let us = |p: Phase| m.total_for(p).as_micros_f64();

    let stubs = us(Phase::ClientStub) + us(Phase::ServerStub) + us(Phase::QueueOp);
    let rows = vec![
        (
            "Modula2+ procedure call".to_string(),
            us(Phase::ProcedureCall),
            0.0,
        ),
        ("Two kernel traps".to_string(), us(Phase::Trap), 0.0),
        (
            "Two context switches".to_string(),
            us(Phase::ContextSwitch),
            0.0,
        ),
        ("Stubs".to_string(), 0.0, stubs),
        (
            "Kernel transfer".to_string(),
            0.0,
            us(Phase::KernelTransfer),
        ),
    ];
    let total_us = out.elapsed.as_micros_f64();
    let tlb_misses = m.tlb_misses();
    let tlb_cost = CostModel::cvax_firefly().hw.tlb_miss.as_micros_f64() * tlb_misses as f64;
    Table5 {
        rows,
        total_us,
        tlb_misses,
        tlb_share: tlb_cost / total_us,
    }
}

/// Renders Table 5.
pub fn render_table5(t: &Table5) -> String {
    let fmt = |v: f64| {
        if v == 0.0 {
            String::new()
        } else {
            format!("{v:.0}")
        }
    };
    let mut body: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|(n, min, ovh)| vec![n.clone(), fmt(*min), fmt(*ovh)])
        .collect();
    let min_total: f64 = t.rows.iter().map(|r| r.1).sum();
    let ovh_total: f64 = t.rows.iter().map(|r| r.2).sum();
    body.push(vec![
        "TOTAL".into(),
        format!("{min_total:.0}"),
        format!("{ovh_total:.0}"),
    ]);
    format!(
        "Table 5: Breakdown of Time for Single-Processor Null LRPC (microseconds)\n{}\n\
         total: {:.0}us (paper: 157us = 109 minimum + 48 overhead)\n\
         TLB misses: {} (paper estimates 43), ~{:.0}% of call time (paper: ~25%)\n",
        format_table(&["Operation", "Minimum", "LRPC Overhead"], &body),
        t.total_us,
        t.tlb_misses,
        t.tlb_share * 100.0
    )
}

// ---------------------------------------------------------------------
// Figure 2 — multiprocessor call throughput.
// ---------------------------------------------------------------------

/// One series point of Figure 2.
#[derive(Clone, Debug)]
pub struct Figure2Point {
    /// Number of processors making calls.
    pub cpus: usize,
    /// LRPC measured calls/second.
    pub lrpc: f64,
    /// The "LRPC optimal" linear extrapolation.
    pub optimal: f64,
    /// SRC RPC measured calls/second.
    pub src: f64,
}

/// The regenerated Figure 2.
#[derive(Clone, Debug)]
pub struct Figure2 {
    /// Points for 1..=4 C-VAX processors.
    pub points: Vec<Figure2Point>,
    /// Four-processor LRPC speedup over one processor.
    pub speedup_4: f64,
    /// Memory-bus utilization at four processors (what bounds LRPC).
    pub bus_utilization_4: f64,
    /// Five-processor MicroVAX II speedup (the paper reports 4.3).
    pub microvax_speedup_5: f64,
}

fn lrpc_profile(cost: &CostModel, bus: ResourceId, queue: ResourceId) -> CallProfile {
    let elapsed = cost.lrpc_null_serial();
    let queue_op = cost.astack_queue_op;
    let bus_hold = cost.bus_time_null_call;
    let compute = elapsed - bus_hold - queue_op * 2;
    CallProfile::new(vec![
        Seg::Use {
            res: queue,
            hold: queue_op,
        },
        Seg::Compute(compute / 2),
        Seg::Use {
            res: bus,
            hold: bus_hold,
        },
        Seg::Compute(compute - compute / 2),
        Seg::Use {
            res: queue,
            hold: queue_op,
        },
    ])
}

/// Builds the per-CPU LRPC call profiles of the Figure-2 contention model
/// over a [`ResourcePlan`]: one *shared* memory bus every call crosses
/// once, plus a *private* A-stack queue per calling CPU (each client binds
/// separately, so queues never contend across CPUs). Returns the profiles,
/// the bus resource (for utilization queries) and the total resource count
/// to size the simulation with.
pub fn lrpc_parallel_profiles(
    cost: &CostModel,
    n_cpus: usize,
) -> (Vec<CallProfile>, ResourceId, usize) {
    let mut plan = ResourcePlan::new();
    let bus = plan.shared();
    let queues = plan.per_cpu(n_cpus);
    let profiles = (0..n_cpus)
        .map(|i| lrpc_profile(cost, bus, queues.for_cpu(i)))
        .collect();
    (profiles, bus, plan.resource_count())
}

/// Builds the SRC RPC profiles: every call serializes on one shared global
/// lock, which is why Figure 2 shows it flat with added processors.
fn src_parallel_profiles(cost: &MsgRpcCost, n_cpus: usize) -> (Vec<CallProfile>, usize) {
    let mut plan = ResourcePlan::new();
    let lock = plan.shared();
    let elapsed = cost.null_actual();
    let held = cost.global_lock_held;
    let compute = elapsed - held;
    let profile = CallProfile::new(vec![
        Seg::Compute(compute / 2),
        Seg::Use {
            res: lock,
            hold: held,
        },
        Seg::Compute(compute - compute / 2),
    ]);
    (vec![profile; n_cpus], plan.resource_count())
}

/// Regenerates Figure 2 via the deterministic virtual-time contention
/// simulation ("Domain caching was disabled for this experiment — each
/// call required a context switch").
pub fn figure2() -> Figure2 {
    let cvax = CostModel::cvax_firefly();
    let src = MsgRpcCost::src_rpc_taos();

    let mut points = Vec::new();
    let mut bus_utilization_4 = 0.0;
    for n in 1..=4usize {
        let (lrpc_profiles, bus, lrpc_resources) = lrpc_parallel_profiles(&cvax, n);
        let lrpc_report = simulate_throughput(&lrpc_profiles, lrpc_resources, SECOND);
        if n == 4 {
            bus_utilization_4 = lrpc_report.utilization(bus);
        }
        let (src_profiles, src_resources) = src_parallel_profiles(&src, n);
        let src_report = simulate_throughput(&src_profiles, src_resources, SECOND);
        let single = 1_000_000.0 / cvax.lrpc_null_serial().as_micros_f64();
        points.push(Figure2Point {
            cpus: n,
            lrpc: lrpc_report.calls_per_second(),
            optimal: single * n as f64,
            src: src_report.calls_per_second(),
        });
    }
    let speedup_4 = points[3].lrpc / points[0].lrpc;

    // The five-processor MicroVAX II Firefly.
    let mv = CostModel::microvax_ii_firefly();
    let (one_profiles, _, one_resources) = lrpc_parallel_profiles(&mv, 1);
    let one = simulate_throughput(&one_profiles, one_resources, SECOND).calls_per_second();
    let (five_profiles, _, five_resources) = lrpc_parallel_profiles(&mv, 5);
    let five = simulate_throughput(&five_profiles, five_resources, SECOND).calls_per_second();
    Figure2 {
        points,
        speedup_4,
        bus_utilization_4,
        microvax_speedup_5: five / one,
    }
}

/// Renders Figure 2.
pub fn render_figure2(f: &Figure2) -> String {
    let body: Vec<Vec<String>> = f
        .points
        .iter()
        .map(|p| {
            vec![
                p.cpus.to_string(),
                format!("{:.0}", p.lrpc),
                format!("{:.0}", p.optimal),
                format!("{:.0}", p.src),
            ]
        })
        .collect();
    format!(
        "Figure 2: Call Throughput On a Multiprocessor (calls/second)\n{}\n\
         LRPC speedup at 4 CPUs: {:.2} (paper: 3.7, ~23000+ calls/s); memory bus {:.0}% utilized\n\
         SRC RPC levels off near 4000 calls/s behind its global lock\n\
         MicroVAX II 5-CPU speedup: {:.2} (paper: 4.3)\n",
        format_table(&["CPUs", "LRPC measured", "LRPC optimal", "SRC RPC"], &body),
        f.speedup_4,
        f.bus_utilization_4 * 100.0,
        f.microvax_speedup_5
    )
}

// ---------------------------------------------------------------------
// Stub performance (Section 3.3).
// ---------------------------------------------------------------------

/// The regenerated stub-performance claim.
#[derive(Clone, Debug)]
pub struct StubReport {
    /// Assembly stub time for a 100-byte push (µs).
    pub assembly_us: f64,
    /// Modula2+ marshaling time for the same bytes (µs).
    pub modula2_us: f64,
    /// Ratio.
    pub ratio: f64,
}

/// Measures the optimized-vs-marshaling stub ratio through the stub VM.
pub fn stubs() -> StubReport {
    let machine = firefly::cpu::Machine::cvax_uniprocessor();
    let mut meter = firefly::meter::Meter::disabled();

    let fast = compile(&idl::parse("interface F { procedure P(d: bytes[100]); }").unwrap());
    let mut frame = LocalFrame::new(fast.procs[0].layout.astack_size);
    let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
    vm.client_push_args(
        &fast.procs[0],
        &[Value::Bytes(vec![0; 100])],
        &mut frame,
        &mut OobStore::new(),
    )
    .unwrap();
    let assembly = machine.cpu(0).now().as_micros_f64();

    machine.cpu(0).reset_clock();
    let slow = compile(&idl::parse("interface S { procedure P(d: gc); }").unwrap());
    let mut frame = LocalFrame::new(slow.procs[0].layout.astack_size);
    let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
    vm.client_push_args(
        &slow.procs[0],
        &[Value::Gc(vec![0; 100])],
        &mut frame,
        &mut OobStore::new(),
    )
    .unwrap();
    let modula2 = machine.cpu(0).now().as_micros_f64();

    StubReport {
        assembly_us: assembly,
        modula2_us: modula2,
        ratio: modula2 / assembly,
    }
}

/// Renders the stub report.
pub fn render_stubs(s: &StubReport) -> String {
    format!(
        "Section 3.3: Stub performance\n\
         assembly stub:       {:.2}us per 100-byte argument\n\
         Modula2+ marshaling: {:.2}us per 100-byte argument\n\
         ratio: {:.2}x (paper: \"a factor of four performance improvement\")\n",
        s.assembly_us, s.modula2_us, s.ratio
    )
}

// ---------------------------------------------------------------------
// Locking (Section 3.4).
// ---------------------------------------------------------------------

/// The regenerated locking claim.
#[derive(Clone, Debug)]
pub struct LockingReport {
    /// Time under the A-stack queue lock per Null call (µs).
    pub queue_us: f64,
    /// Total call time (µs).
    pub total_us: f64,
    /// Share.
    pub share: f64,
}

/// Measures lock time on the LRPC critical path.
pub fn locking() -> LockingReport {
    let env = LrpcEnv::new(1, false);
    let out = env.steady_call("Null", &[]);
    let queue = out
        .meter
        .total_locked(lrpc::ASTACK_QUEUE_LOCK)
        .as_micros_f64();
    let total = out.elapsed.as_micros_f64();
    LockingReport {
        queue_us: queue,
        total_us: total,
        share: queue / total,
    }
}

/// Renders the locking report.
pub fn render_locking(l: &LockingReport) -> String {
    format!(
        "Section 3.4: Locking on the critical path\n\
         A-stack queue lock held {:.1}us of a {:.0}us call = {:.1}% \
         (paper: \"queuing operations take less than 2% of the total call time\"; \
         no other locking occurs on the transfer path)\n",
        l.queue_us,
        l.total_us,
        l.share * 100.0
    )
}

// ---------------------------------------------------------------------
// Register-passing discontinuity (Section 2.2, footnote 2).
// ---------------------------------------------------------------------

/// One point of the register-window sweep.
#[derive(Clone, Debug)]
pub struct RegisterPoint {
    /// Payload bytes.
    pub bytes: usize,
    /// Call latency (µs).
    pub latency_us: f64,
    /// Copies performed.
    pub copies: usize,
}

/// The regenerated footnote-2 study.
#[derive(Clone, Debug)]
pub struct RegisterReport {
    /// Latency at each payload size.
    pub points: Vec<RegisterPoint>,
    /// The register window used.
    pub window: usize,
    /// Size of the latency jump at the window boundary (µs).
    pub jump_us: f64,
    /// Share of Figure 1's calls that overflow the window.
    pub overflow_share: f64,
}

/// Sweeps payload sizes through a register-passing V-style system,
/// exposing the discontinuity the paper's footnote 2 warns about, and
/// computes how often Figure 1's workload would overflow the window
/// ("The data in Figure 1 indicates that this can be a frequent
/// problem").
pub fn registers() -> RegisterReport {
    use kernel::kernel::Kernel;
    let cost = MsgRpcCost::v_with_registers();
    let machine = firefly::cpu::Machine::new(1, CostModel::with_hw(cost.hw));
    let system = msgrpc::MsgRpcSystem::new(Kernel::new(machine), cost);
    let sd = system.kernel().create_domain("s");
    // One fixed-size procedure per probed payload size.
    let sizes: Vec<usize> = (1..=16).map(|i| i * 4).collect();
    let idl_src = format!(
        "interface Sweep {{ {} }}",
        sizes
            .iter()
            .map(|n| format!("procedure P{n}(data: in bytes[{n}] noninterpreted);"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let handlers: Vec<msgrpc::MsgHandler> = sizes
        .iter()
        .map(|_| Box::new(|_: &[Value]| Ok(lrpc::Reply::none())) as msgrpc::MsgHandler)
        .collect();
    let server = system
        .export(&sd, &idl_src, handlers, 1)
        .expect("export sweep");
    let client = system.kernel().create_domain("c");
    let thread = system.kernel().spawn_thread(&client);

    let mut points = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let args = [Value::Bytes(vec![0; n])];
        system
            .call_indexed(&client, &thread, &server, 0, i, &args, false)
            .expect("warmup");
        let out = system
            .call_indexed(&client, &thread, &server, 0, i, &args, true)
            .expect("call");
        points.push(RegisterPoint {
            bytes: n,
            latency_us: out.elapsed.as_micros_f64(),
            copies: out.copies.count(),
        });
    }
    let window = cost.register_window.expect("preset has a window");
    let at = points
        .iter()
        .position(|p| p.bytes > window)
        .expect("sweep crosses the window");
    let jump_us = points[at].latency_us - points[at - 1].latency_us;
    let overflow_share = 1.0 - SizeDistribution::figure_1().cumulative_below(window as u32);
    RegisterReport {
        points,
        window,
        jump_us,
        overflow_share,
    }
}

/// Renders the register report.
pub fn render_registers(r: &RegisterReport) -> String {
    let body: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.bytes.to_string(),
                format!("{:.1}", p.latency_us),
                p.copies.to_string(),
                if p.bytes <= r.window {
                    "registers".into()
                } else {
                    "buffers".into()
                },
            ]
        })
        .collect();
    format!(
        "Footnote 2: register-passing discontinuity ({}-byte window)\n{}\n\
         crossing the window costs +{:.0}us for 4 extra bytes\n\
         {:.0}% of Figure 1's calls overflow a {}-byte window — \
         \"this can be a frequent problem\"\n",
        r.window,
        format_table(&["Bytes", "Latency (us)", "Copies", "Path"], &body),
        r.jump_us,
        r.overflow_share * 100.0,
        r.window
    )
}

// ---------------------------------------------------------------------
// Workload replay: the measured call mix through both transports.
// ---------------------------------------------------------------------

/// Aggregate results of replaying the measured workload.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Calls replayed.
    pub calls: usize,
    /// Mean LRPC latency (µs).
    pub lrpc_mean_us: f64,
    /// Mean SRC RPC latency (µs).
    pub src_mean_us: f64,
    /// Aggregate speedup under the real size mix.
    pub speedup: f64,
}

/// Replays a workload drawn from Figure 1's size distribution through
/// both transports — the expected cross-domain call time under the
/// *measured* call mix, not just the four microbenchmarks.
pub fn replay(calls: usize) -> ReplayReport {
    const XFER_IDL: &str =
        "interface Xfer { procedure Put(data: in var bytes[1448] noninterpreted); }";

    let lrpc_env = {
        use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
        let kern = kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor());
        let rt = LrpcRuntime::with_config(
            kern,
            RuntimeConfig {
                domain_caching: false,
                ..RuntimeConfig::default()
            },
        );
        let server = rt.kernel().create_domain("xfer");
        rt.export(
            &server,
            XFER_IDL,
            vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
        )
        .expect("export");
        let client = rt.kernel().create_domain("c");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Xfer").expect("import");
        (rt, thread, binding)
    };

    let src_cost = MsgRpcCost::src_rpc_taos();
    let src_sys = {
        use kernel::kernel::Kernel;
        let machine = firefly::cpu::Machine::new(1, CostModel::with_hw(src_cost.hw));
        let system = msgrpc::MsgRpcSystem::new(Kernel::new(machine), src_cost);
        let sd = system.kernel().create_domain("xfer");
        let server = system
            .export(
                &sd,
                XFER_IDL,
                vec![Box::new(|_: &[Value]| Ok(lrpc::Reply::none())) as msgrpc::MsgHandler],
                1,
            )
            .expect("export");
        let client = system.kernel().create_domain("c");
        let thread = system.kernel().spawn_thread(&client);
        (system, client, thread, server)
    };

    let sizes = SizeDistribution::figure_1().sample(0x1989, calls);
    let mut lrpc_total = 0.0;
    let mut src_total = 0.0;
    for &size in &sizes {
        let args = [Value::Var(vec![0u8; (size as usize).min(1448)])];
        let out = lrpc_env
            .2
            .call_unmetered(0, &lrpc_env.1, 0, &args)
            .expect("lrpc replay call");
        lrpc_total += out.elapsed.as_micros_f64();
        let out = src_sys
            .0
            .call_indexed(&src_sys.1, &src_sys.2, &src_sys.3, 0, 0, &args, false)
            .expect("src replay call");
        src_total += out.elapsed.as_micros_f64();
    }
    let lrpc_mean = lrpc_total / calls as f64;
    let src_mean = src_total / calls as f64;
    ReplayReport {
        calls,
        lrpc_mean_us: lrpc_mean,
        src_mean_us: src_mean,
        speedup: src_mean / lrpc_mean,
    }
}

/// Renders the replay report.
pub fn render_replay(r: &ReplayReport) -> String {
    format!(
        "Workload replay: Figure 1's size mix through both transports ({} calls)\n\
         mean LRPC call:    {:.0}us\n\
         mean SRC RPC call: {:.0}us\n\
         aggregate speedup under the measured workload: {:.2}x\n",
        r.calls, r.lrpc_mean_us, r.src_mean_us, r.speedup
    )
}

// ---------------------------------------------------------------------
// Blended trace replay: local + remote mix (extension).
// ---------------------------------------------------------------------

/// Aggregates of replaying a full Taos-like trace (local and remote
/// calls).
#[derive(Clone, Debug)]
pub struct BlendedReport {
    /// Calls replayed.
    pub calls: usize,
    /// Fraction of calls that were remote.
    pub remote_share: f64,
    /// Mean local (LRPC) call time (µs).
    pub local_mean_us: f64,
    /// Mean remote (network) call time (µs).
    pub remote_mean_us: f64,
    /// Blended mean (µs).
    pub blended_mean_us: f64,
    /// Share of total communication *time* spent on remote calls.
    pub remote_time_share: f64,
}

/// Replays a trace drawn from all three Section 2 dimensions — Table 1's
/// cross-machine mix, Figure 1's sizes, Section 2.2's popularity — with
/// local calls over LRPC and remote calls over the simulated Ethernet.
/// Quantifies the paper's motivating observation: even at a ~5 % remote
/// call rate, the network dominates total communication time, so the
/// local case is the one worth optimizing.
pub fn blended(calls: usize) -> BlendedReport {
    use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
    const XFER_IDL: &str =
        "interface Xfer { procedure Put(data: in var bytes[1448] noninterpreted); }";
    const REMOTE_IDL: &str =
        "interface RemoteXfer { procedure Put(data: in var bytes[1448] noninterpreted); }";

    let kern = kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        kern,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("xfer");
    rt.export(
        &server,
        XFER_IDL,
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .expect("export local");
    let remote = msgrpc::RemoteMachine::new("fileserver");
    remote
        .export(
            REMOTE_IDL,
            vec![Box::new(|_: &[Value]| Ok(lrpc::Reply::none())) as msgrpc::MsgHandler],
        )
        .expect("export remote");
    rt.set_remote_transport(remote);

    let client = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&client);
    let local = rt.import(&client, "Xfer").expect("local import");
    let far = rt
        .import_remote(&client, "RemoteXfer")
        .expect("remote import");

    let trace = workload::TraceModel::taos().generate(0x1989, calls);
    let mut local_total = 0.0;
    let mut remote_total = 0.0;
    let mut local_n = 0usize;
    let mut remote_n = 0usize;
    for event in &trace.events {
        let args = [Value::Var(vec![0u8; (event.bytes as usize).min(1448)])];
        if event.remote {
            let out = far.call_indexed(0, &thread, 0, &args).expect("remote call");
            remote_total += out.elapsed.as_micros_f64();
            remote_n += 1;
        } else {
            let out = local
                .call_unmetered(0, &thread, 0, &args)
                .expect("local call");
            local_total += out.elapsed.as_micros_f64();
            local_n += 1;
        }
    }
    let local_mean = if local_n > 0 {
        local_total / local_n as f64
    } else {
        0.0
    };
    let remote_mean = if remote_n > 0 {
        remote_total / remote_n as f64
    } else {
        0.0
    };
    BlendedReport {
        calls,
        remote_share: remote_n as f64 / calls as f64,
        local_mean_us: local_mean,
        remote_mean_us: remote_mean,
        blended_mean_us: (local_total + remote_total) / calls as f64,
        remote_time_share: remote_total / (local_total + remote_total),
    }
}

/// Renders the blended report.
pub fn render_blended(r: &BlendedReport) -> String {
    format!(
        "Blended trace replay: Taos-like mix of local and remote calls ({} calls)\n\
         remote calls: {:.1}% of calls, {:.0}% of total communication time\n\
         mean local (LRPC): {:.0}us   mean remote (Ethernet): {:.0}us   blended: {:.0}us\n\
         even a ~5% remote rate dominates wall time — \"system builders have an\n\
         incentive to avoid network communication\"; the local case is the one to optimize\n",
        r.calls,
        r.remote_share * 100.0,
        r.remote_time_share * 100.0,
        r.local_mean_us,
        r.remote_mean_us,
        r.blended_mean_us
    )
}

// ---------------------------------------------------------------------
// Coalescing study: safety vs performance (the paper's thesis).
// ---------------------------------------------------------------------

/// One structural alternative for a pair of weakly-related subsystems.
#[derive(Clone, Debug)]
pub struct CoalescingRow {
    /// Structure name.
    pub structure: String,
    /// Cost of one cross-subsystem call (µs).
    pub per_call_us: f64,
    /// Cost of a 10 000-call workload (ms).
    pub workload_ms: f64,
    /// Whether a protection firewall separates the subsystems.
    pub firewall: bool,
}

/// The regenerated coalescing study.
#[derive(Clone, Debug)]
pub struct CoalescingReport {
    /// The three structures: coalesced, LRPC, SRC RPC.
    pub rows: Vec<CoalescingRow>,
}

/// Quantifies the introduction's thesis: "Because the conventional
/// approach has high overhead, today's small-kernel operating systems
/// have suffered from a loss in performance or a deficiency in structure
/// or both. Usually structure suffers most; logically separate entities
/// are packaged together into a single domain ... LRPC encourages both
/// safety and performance."
pub fn coalescing() -> CoalescingReport {
    const CALLS: f64 = 10_000.0;
    let cvax = CostModel::cvax_firefly();

    // Coalesced: the subsystems share a domain; a cross-subsystem call is
    // a plain procedure call with no firewall.
    let coalesced = cvax.hw.procedure_call.as_micros_f64();

    // Separate domains over LRPC: measured.
    let lrpc = LrpcEnv::new(1, false)
        .steady_latency("Null", &[])
        .as_micros_f64();

    // Separate domains over SRC RPC: measured.
    let src = MsgEnv::new(MsgRpcCost::src_rpc_taos())
        .steady_latency("Null", &[])
        .as_micros_f64();

    // Verify the firewall claims functionally: LRPC separates address
    // spaces (a foreign domain faults on the other's memory), the
    // coalesced structure by definition does not.
    let env = LrpcEnv::new(1, false);
    let region = env.binding.state().astacks.primary_region();
    let outsider = env.rt.kernel().create_domain("outsider");
    let lrpc_firewall = outsider.ctx().check(region.id(), false, false).is_err();

    CoalescingReport {
        rows: vec![
            CoalescingRow {
                structure: "coalesced (one domain)".into(),
                per_call_us: coalesced,
                workload_ms: coalesced * CALLS / 1_000.0,
                firewall: false,
            },
            CoalescingRow {
                structure: "separate domains, LRPC".into(),
                per_call_us: lrpc,
                workload_ms: lrpc * CALLS / 1_000.0,
                firewall: lrpc_firewall,
            },
            CoalescingRow {
                structure: "separate domains, SRC RPC".into(),
                per_call_us: src,
                workload_ms: src * CALLS / 1_000.0,
                firewall: true,
            },
        ],
    }
}

/// Renders the coalescing study.
pub fn render_coalescing(r: &CoalescingReport) -> String {
    let body: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.structure.clone(),
                format!("{:.0}", row.per_call_us),
                format!("{:.1}", row.workload_ms),
                if row.firewall {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    format!(
        "Coalescing study: safety vs performance for two weakly-related subsystems\n{}\n\
         conventional RPC makes the firewall 66x more expensive than a procedure call,\n\
         so designers coalesce and lose it; LRPC cuts the premium to ~22x, \"encouraging\n\
         both safety and performance\"\n",
        format_table(
            &[
                "Structure",
                "Cross-subsystem call (us)",
                "10k calls (ms)",
                "Firewall"
            ],
            &body
        )
    )
}

// ---------------------------------------------------------------------
// Sensitivity analysis: does the conclusion survive other hardware?
// ---------------------------------------------------------------------

/// One hardware point of the sensitivity sweep.
#[derive(Clone, Debug)]
pub struct SensitivityPoint {
    /// Context-switch cost assumed (µs).
    pub context_switch_us: u64,
    /// Hardware lower bound (µs).
    pub minimum_us: f64,
    /// Measured LRPC Null (µs).
    pub lrpc_us: f64,
    /// Measured SRC RPC Null (µs).
    pub src_us: f64,
    /// SRC/LRPC ratio.
    pub ratio: f64,
}

/// The regenerated sensitivity study.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// One point per context-switch cost.
    pub points: Vec<SensitivityPoint>,
}

/// Sweeps the context-switch cost (the dominant hardware primitive) and
/// re-measures both transports. LRPC's *overhead* over the lower bound is
/// a software property (48 µs vs SRC's 355 µs), so the advantage persists
/// across hardware generations even as the headline ratio moves — the
/// reason the design outlived the C-VAX.
pub fn sensitivity() -> SensitivityReport {
    let mut points = Vec::new();
    for ctx_us in [10u64, 20, 33, 50, 80] {
        let mut cost = CostModel::cvax_firefly();
        cost.hw.context_switch = Nanos::from_micros(ctx_us);
        let machine = firefly::cpu::Machine::new(1, cost);
        let lrpc_env = LrpcEnv::with_machine(machine, false);
        let lrpc = lrpc_env.steady_latency("Null", &[]).as_micros_f64();

        let mut src = MsgRpcCost::src_rpc_taos();
        src.hw.context_switch = Nanos::from_micros(ctx_us);
        let src_env = MsgEnv::new(src);
        let src_t = src_env.steady_latency("Null", &[]).as_micros_f64();

        points.push(SensitivityPoint {
            context_switch_us: ctx_us,
            minimum_us: src.hw.theoretical_minimum().as_micros_f64(),
            lrpc_us: lrpc,
            src_us: src_t,
            ratio: src_t / lrpc,
        });
    }
    SensitivityReport { points }
}

/// Renders the sensitivity study.
pub fn render_sensitivity(r: &SensitivityReport) -> String {
    let body: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.context_switch_us.to_string(),
                format!("{:.0}", p.minimum_us),
                format!("{:.0}", p.lrpc_us),
                format!("{:.0}", p.src_us),
                format!("{:.2}x", p.ratio),
            ]
        })
        .collect();
    format!(
        "Sensitivity: Null latency vs context-switch cost (C-VAX = 33us)\n{}\n\
         LRPC's overhead over the lower bound stays 48us and SRC RPC's stays 355us at\n\
         every point: the factor-of-three is software, not an artifact of one machine\n",
        format_table(
            &["Ctx switch (us)", "Lower bound", "LRPC", "SRC RPC", "Ratio"],
            &body
        )
    )
}

// ---------------------------------------------------------------------
// CSV renderers (for plotting the figures).
// ---------------------------------------------------------------------

/// Figure 1 as CSV: `lo,hi,calls,cumulative`.
pub fn render_figure1_csv(f: &Figure1) -> String {
    let mut out = String::from("bytes_lo,bytes_hi,calls,cumulative\n");
    for (i, &count) in f.histogram.counts.iter().enumerate() {
        out.push_str(&format!(
            "{},{},{},{:.4}\n",
            f.histogram.edges[i],
            f.histogram.edges[i + 1],
            count,
            f.cumulative[i]
        ));
    }
    out
}

/// Figure 2 as CSV: `cpus,lrpc,optimal,src`.
pub fn render_figure2_csv(f: &Figure2) -> String {
    let mut out = String::from("cpus,lrpc_calls_per_sec,optimal_calls_per_sec,src_calls_per_sec\n");
    for p in &f.points {
        out.push_str(&format!(
            "{},{:.0},{:.0},{:.0}\n",
            p.cpus, p.lrpc, p.optimal, p.src
        ));
    }
    out
}

/// The register sweep as CSV: `bytes,latency_us,copies,path`.
pub fn render_registers_csv(r: &RegisterReport) -> String {
    let mut out = String::from("bytes,latency_us,copies,path\n");
    for p in &r.points {
        out.push_str(&format!(
            "{},{:.2},{},{}\n",
            p.bytes,
            p.latency_us,
            p.copies,
            if p.bytes <= r.window {
                "registers"
            } else {
                "buffers"
            }
        ));
    }
    out
}

/// The sensitivity sweep as CSV.
pub fn render_sensitivity_csv(r: &SensitivityReport) -> String {
    let mut out = String::from("context_switch_us,minimum_us,lrpc_us,src_us,ratio\n");
    for p in &r.points {
        out.push_str(&format!(
            "{},{:.0},{:.0},{:.0},{:.3}\n",
            p.context_switch_us, p.minimum_us, p.lrpc_us, p.src_us, p.ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches() {
        for row in table1() {
            assert!(
                (row.measured_percent - row.paper_percent).abs() < 0.15,
                "{}: {} vs {}",
                row.system,
                row.measured_percent,
                row.paper_percent
            );
        }
    }

    #[test]
    fn figure1_matches() {
        let f = figure1();
        assert_eq!(f.total_calls, workload::FIGURE_1_TOTAL_CALLS);
        assert!(f.max_bytes <= workload::FIGURE_1_MAX_BYTES);
        // Mode under 50 bytes; majority under 200.
        assert!(f.histogram.counts[0] >= *f.histogram.counts[1..].iter().max().unwrap());
        assert!(f.cumulative[1] > 0.5);
    }

    #[test]
    fn table2_matches_within_one_percent() {
        for row in table2() {
            let err = (row.measured_us - row.paper_us).abs() / row.paper_us;
            assert!(
                err < 0.01,
                "{}: {} vs {}",
                row.system,
                row.measured_us,
                row.paper_us
            );
        }
    }

    #[test]
    fn table3_letters_match_the_paper() {
        let t = table3();
        assert_eq!(t.rows[0].1, "A");
        assert_eq!(t.rows[0].2, "ABCE");
        assert_eq!(t.rows[0].3, "ADE");
        assert_eq!(t.rows[1].1, "AE");
        assert_eq!(t.rows[1].2, "ABCE");
        assert_eq!(t.rows[1].3, "ADE");
        assert_eq!(t.rows[2].1, "F");
        assert_eq!(t.rows[2].2, "BCF");
        assert_eq!(t.rows[2].3, "BF");
        assert_eq!(t.totals, (3, 7, 5));
    }

    #[test]
    fn table4_matches_within_three_percent() {
        for row in table4() {
            for (measured, paper) in [
                (row.lrpc_mp_us, row.paper.0),
                (row.lrpc_us, row.paper.1),
                (row.taos_us, row.paper.2),
            ] {
                let err = (measured - paper).abs() / paper;
                assert!(err < 0.03, "{}: {measured:.1} vs {paper}", row.test);
            }
        }
    }

    #[test]
    fn table5_matches() {
        let t = table5();
        assert_eq!(t.total_us.round() as u64, 157);
        assert_eq!(t.tlb_misses, 43);
        assert!(
            (t.tlb_share - 0.25).abs() < 0.03,
            "tlb share {}",
            t.tlb_share
        );
        let min: f64 = t.rows.iter().map(|r| r.1).sum();
        let ovh: f64 = t.rows.iter().map(|r| r.2).sum();
        assert_eq!(min.round() as u64, 109);
        assert_eq!(ovh.round() as u64, 48);
    }

    #[test]
    fn figure2_matches_the_shape() {
        let f = figure2();
        // One CPU: ~6300 calls/s.
        assert!(
            (6_200.0..=6_500.0).contains(&f.points[0].lrpc),
            "{}",
            f.points[0].lrpc
        );
        // Four CPUs: over 23 000 calls/s, speedup ~3.7.
        assert!(f.points[3].lrpc > 22_000.0, "{}", f.points[3].lrpc);
        assert!((3.4..=3.9).contains(&f.speedup_4), "{}", f.speedup_4);
        // SRC RPC levels off near 4000 from two processors on.
        assert!(
            (3_700.0..=4_300.0).contains(&f.points[1].src),
            "{}",
            f.points[1].src
        );
        let flat = (f.points[3].src - f.points[1].src).abs() / f.points[1].src;
        assert!(
            flat < 0.05,
            "SRC must stay flat: {} vs {}",
            f.points[1].src,
            f.points[3].src
        );
        // MicroVAX II: 4.3 speedup with five processors.
        assert!(
            (4.0..=4.6).contains(&f.microvax_speedup_5),
            "{}",
            f.microvax_speedup_5
        );
    }

    #[test]
    fn stub_ratio_is_about_four() {
        let s = stubs();
        assert!((3.5..=4.5).contains(&s.ratio), "{}", s.ratio);
    }

    #[test]
    fn register_window_jump_is_discontinuous() {
        let r = registers();
        assert_eq!(r.window, 32);
        // Below the window: zero copies. Above: the full chain.
        assert!(r
            .points
            .iter()
            .filter(|p| p.bytes <= 32)
            .all(|p| p.copies == 0));
        assert!(r
            .points
            .iter()
            .filter(|p| p.bytes > 32)
            .all(|p| p.copies >= 3));
        assert!(r.jump_us > 10.0, "jump {}", r.jump_us);
        // Figure 1 says most calls overflow 32 bytes.
        assert!(r.overflow_share > 0.5, "{}", r.overflow_share);
        // Latency is monotone within each regime.
        for w in r.points.windows(2) {
            if (w[0].bytes <= 32) == (w[1].bytes <= 32) {
                assert!(w[1].latency_us >= w[0].latency_us - 1e-9);
            }
        }
    }

    #[test]
    fn replay_speedup_holds_under_the_real_mix() {
        let r = replay(300);
        assert!(
            r.lrpc_mean_us > 157.0 && r.lrpc_mean_us < 260.0,
            "{}",
            r.lrpc_mean_us
        );
        assert!(r.src_mean_us > 464.0, "{}", r.src_mean_us);
        assert!(
            (2.3..=3.2).contains(&r.speedup),
            "workload-weighted speedup {} should stay near the factor of three",
            r.speedup
        );
    }

    #[test]
    fn blended_replay_shows_remote_dominating_time() {
        let r = blended(400);
        assert!(
            (0.03..=0.08).contains(&r.remote_share),
            "{}",
            r.remote_share
        );
        assert!(r.remote_mean_us > 2_000.0, "{}", r.remote_mean_us);
        assert!(r.local_mean_us < 300.0, "{}", r.local_mean_us);
        // ~5% of calls consume a large share of communication time.
        assert!(r.remote_time_share > 0.3, "{}", r.remote_time_share);
    }

    #[test]
    fn coalescing_study_shows_the_tradeoff() {
        let r = coalescing();
        assert_eq!(r.rows.len(), 3);
        // Coalesced is fastest but unprotected.
        assert!(r.rows[0].per_call_us < 10.0 && !r.rows[0].firewall);
        // LRPC and SRC RPC are both protected; LRPC is ~3x cheaper.
        assert!(r.rows[1].firewall && r.rows[2].firewall);
        let ratio = r.rows[2].per_call_us / r.rows[1].per_call_us;
        assert!((2.8..=3.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn sensitivity_overheads_are_invariant() {
        let r = sensitivity();
        for p in &r.points {
            let lrpc_overhead = p.lrpc_us - p.minimum_us;
            let src_overhead = p.src_us - p.minimum_us;
            assert!((lrpc_overhead - 48.0).abs() < 0.5, "{lrpc_overhead}");
            assert!((src_overhead - 355.0).abs() < 0.5, "{src_overhead}");
        }
        // The ratio moves with the hardware but LRPC always wins.
        assert!(r.points.iter().all(|p| p.ratio > 1.5));
        assert!(
            r.points[0].ratio > r.points[4].ratio,
            "cheaper switches favour LRPC more"
        );
    }

    #[test]
    fn csv_renderers_are_well_formed() {
        let f2 = figure2();
        let csv = render_figure2_csv(&f2);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 points");
        assert!(lines[0].starts_with("cpus,"));
        assert_eq!(lines[1].split(',').count(), 4);

        let f1 = figure1();
        let csv = render_figure1_csv(&f1);
        assert_eq!(csv.lines().count(), f1.histogram.counts.len() + 1);

        let s = sensitivity();
        assert_eq!(
            render_sensitivity_csv(&s).lines().count(),
            s.points.len() + 1
        );
    }

    #[test]
    fn queue_lock_is_under_two_percent() {
        let l = locking();
        assert!(l.share < 0.02, "{}", l.share);
        assert!(l.queue_us > 0.0);
    }
}
