//! Host wall-clock benchmark of the large-parameter data plane: bind-time
//! bulk arena vs per-call out-of-band segments.
//!
//! Every payload in this sweep is declared `var bytes[65536]`, so the
//! parameter is statically demoted to an out-of-band slot and travels the
//! bulk plane regardless of its actual length. Two things are measured:
//!
//! * **Transport cycles** (the timed comparison): the exact per-call
//!   transport work the call path performs for the in-direction segment,
//!   both ways. The arena leg leases a chunk of the binding's bind-time
//!   bulk region (one lock-free pop), writes the length-prefixed segment,
//!   revalidates and rereads it under the server's protection context, and
//!   pushes the chunk back. The fallback leg allocates, pairwise-maps,
//!   rewrites, rereads, unmaps and frees a fresh kernel segment — the way
//!   the pre-arena call path did on *every* large call. The copies are
//!   byte-identical on both legs; the delta is purely the per-call
//!   map/unmap machinery the arena amortized into bind time.
//!
//! * **Full calls** (the contract checks): one steady-state call per leg
//!   through the real runtime, with the fallback leg forced through the
//!   `bulk_exhaust` fault-injection site. The two legs must charge
//!   bit-identical per-byte virtual time, the fallback paying exactly
//!   [`lrpc::OOB_SEGMENT_COST`] more (Section 5.2's "complicated and
//!   relatively expensive, but infrequent" path), and the arena leg must
//!   record zero per-call fallbacks.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use firefly::cpu::Cpu;
use firefly::fault::{FaultConfig, FaultPlan};
use firefly::meter::Meter;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::thread::Thread;
use kernel::Domain;
use lrpc::{Binding, BulkArena, Handler, Reply, ServerCtx, TestRuntime, OOB_SEGMENT_COST};

/// Default transport cycles per measurement leg.
pub const DEFAULT_ITERS: usize = 5_000;

/// Host-speedup floor the gate enforces at and above
/// [`SPEEDUP_FLOOR_BYTES`].
pub const MIN_SPEEDUP: f64 = 2.0;

/// Payload size from which the speedup gate applies. Below this the
/// segment is a page or two and host noise can swamp the map/unmap
/// saving; the gate pins the region where it must matter.
pub const SPEEDUP_FLOOR_BYTES: usize = 8 * 1024;

/// The payload sweep, 64 B to 64 KB.
pub const PAYLOADS: [usize; 7] = [64, 256, 1024, 4096, 8192, 16384, 65536];

/// Declared maximum of the variable-size parameter.
const MAX_VAR: usize = 65536;

const BULK_IDL: &str = r#"
    interface Bulk {
        procedure BigIn(data: in var bytes[65536] noninterpreted);
        procedure BigInOut(data: inout var bytes[65536] noninterpreted);
    }
"#;

/// One `(procedure, payload)` point, both ways.
#[derive(Clone, Debug)]
pub struct BulkPoint {
    /// Procedure name (`BigIn`, `BigInOut`).
    pub proc: &'static str,
    /// Payload bytes per call.
    pub payload: usize,
    /// Host ns per in-direction transport through the bulk arena.
    pub arena_ns: f64,
    /// Host ns per in-direction transport through a per-call segment.
    pub fallback_ns: f64,
    /// fallback / arena.
    pub speedup: f64,
    /// Virtual ns one steady-state arena-leg call charges.
    pub arena_virtual_ns: u64,
    /// Virtual ns one forced-fallback call charges (arena + the segment
    /// map/unmap cost, exactly).
    pub fallback_virtual_ns: u64,
}

/// The full payload sweep.
#[derive(Clone, Debug)]
pub struct BulkBenchReport {
    /// Per-point measurements.
    pub points: Vec<BulkPoint>,
}

impl BulkBenchReport {
    /// The acceptance gate: at and above [`SPEEDUP_FLOOR_BYTES`] the arena
    /// transport must beat the per-call segment by at least
    /// [`MIN_SPEEDUP`]× on the host. (Virtual-charge identity and the
    /// zero-fallback steady state are asserted inside [`run`].)
    pub fn passes(&self) -> bool {
        self.gate_failures().is_empty()
    }

    /// Every gate violation, human-readable.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for p in &self.points {
            if p.payload >= SPEEDUP_FLOOR_BYTES && p.speedup < MIN_SPEEDUP {
                problems.push(format!(
                    "{} @{}B: arena transport only {:.2}x faster than per-call \
                     segments (gate {MIN_SPEEDUP}x)",
                    p.proc, p.payload, p.speedup
                ));
            }
        }
        problems
    }
}

struct BulkEnv {
    thread: Arc<Thread>,
    binding: Binding,
}

fn handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
        Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::none().with_out(0, args[0].clone()))),
    ]
}

/// Builds a single-CPU environment; with `forced_fallback` the
/// `bulk_exhaust` fault site presents the arena as empty on every call,
/// which is exactly the pre-arena per-call segment path.
fn env(forced_fallback: bool) -> BulkEnv {
    let rt = TestRuntime::new().domain_caching(false).build();
    let server = rt.kernel().create_domain("bulk-server");
    rt.export(&server, BULK_IDL, handlers()).expect("export");
    let client = rt.kernel().create_domain("bulk-client");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Bulk").expect("import");
    if forced_fallback {
        rt.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            bulk_exhaust: true,
            ..FaultConfig::default()
        })));
    }
    BulkEnv { thread, binding }
}

/// One arena transport: lease a chunk, write the length-prefixed segment,
/// revalidate and reread it server-side, push the chunk back.
///
/// Both legs copy the same bytes and touch the same number of simulated
/// TLB pages; the reread lands in a reused server-side buffer. The
/// asymmetries left are the real ones: the fallback's fresh region is
/// TLB-cold on every call and pays the map/unmap machinery, while the
/// arena's pages recur across calls and its lease is one lock-free pop.
fn arena_cycle(arena: &BulkArena, server: &Domain, cpu: &Cpu, seg: &[u8], reread: &mut [u8]) {
    let total = seg.len() + 8;
    let chunk = arena.acquire(total).expect("arena chunk");
    let region = arena.region();
    let mut scratch = Meter::disabled();
    let mut hdr = [0u8; 8];
    hdr[..4].copy_from_slice(&(seg.len() as u32).to_le_bytes());
    region.write_raw(chunk.offset, &hdr).unwrap();
    region.write_raw(chunk.offset + 8, seg).unwrap();
    cpu.touch_pages(region.pages_for(chunk.offset, total), &mut scratch);
    server.ctx().check(region.id(), false, false).unwrap();
    region.read_raw(chunk.offset, &mut hdr).unwrap();
    let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
    region
        .read_raw(chunk.offset + 8, &mut reread[..len])
        .unwrap();
    black_box(&reread[..len]);
    cpu.touch_pages(region.pages_for(chunk.offset, len + 8), &mut scratch);
    arena.release(chunk.index);
}

/// One per-call-segment transport: allocate and pairwise-map a fresh
/// kernel region, write/revalidate/reread the same segment, then unmap it
/// from both domains and free it.
fn fallback_cycle(
    kernel: &Kernel,
    client: &Domain,
    server: &Domain,
    cpu: &Cpu,
    seg: &[u8],
    reread: &mut [u8],
) {
    let total = seg.len() + 8;
    let region = kernel.map_pairwise("oob-segment", client, server, total.max(8));
    let mut scratch = Meter::disabled();
    let mut hdr = [0u8; 8];
    hdr[..4].copy_from_slice(&(seg.len() as u32).to_le_bytes());
    region.write_raw(0, &hdr).unwrap();
    region.write_raw(8, seg).unwrap();
    cpu.touch_pages(region.pages_for(0, total), &mut scratch);
    server.ctx().check(region.id(), false, false).unwrap();
    region.read_raw(0, &mut hdr).unwrap();
    let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
    region.read_raw(8, &mut reread[..len]).unwrap();
    black_box(&reread[..len]);
    cpu.touch_pages(region.pages_for(0, len + 8), &mut scratch);
    client.ctx().unmap(region.id());
    server.ctx().unmap(region.id());
    kernel.machine().mem().free(region.id());
}

/// Which leg a timing round runs.
#[derive(Clone, Copy, PartialEq)]
enum Leg {
    Arena,
    Fallback,
}

/// Times `iters` transport cycles per round on each leg, alternating the
/// legs across rounds so host noise lands on both equally; returns the
/// best (minimum) ns per cycle seen for each.
fn time_legs(iters: usize, mut f: impl FnMut(Leg)) -> (f64, f64) {
    const ROUNDS: usize = 5;
    let mut best = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (i, leg) in [Leg::Arena, Leg::Fallback].into_iter().enumerate() {
            let start = Instant::now();
            for _ in 0..iters {
                f(leg);
            }
            best[i] = best[i].min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
    (best[0], best[1])
}

/// Runs the full payload sweep.
///
/// Panics if the two full-call legs' virtual times ever differ by anything
/// other than exactly [`OOB_SEGMENT_COST`], or if the arena leg ever falls
/// back to a per-call segment — the host comparison is only meaningful
/// while the arena path is the steady state and observationally identical.
pub fn run(iters: usize) -> BulkBenchReport {
    let mut points = Vec::new();
    for proc in ["BigIn", "BigInOut"] {
        for payload in PAYLOADS {
            assert!(payload <= MAX_VAR);
            let args = [Value::Var(vec![0xAB; payload])];
            let arena_env = env(false);
            let fallback_env = env(true);

            // Warm both legs, then pin the virtual-time contract from one
            // steady-state call on each.
            for e in [&arena_env, &fallback_env] {
                e.binding.call(0, &e.thread, proc, &args).expect("warmup");
            }
            let arena_virtual = arena_env
                .binding
                .call(0, &arena_env.thread, proc, &args)
                .expect("measured")
                .elapsed;
            let fallback_virtual = fallback_env
                .binding
                .call(0, &fallback_env.thread, proc, &args)
                .expect("measured")
                .elapsed;
            assert_eq!(
                fallback_virtual,
                arena_virtual + OOB_SEGMENT_COST,
                "{proc} @{payload}B: the fallback must charge the arena leg's \
                 exact virtual time plus the segment map/unmap cost"
            );
            let stats = &arena_env.binding.state().stats;
            assert_eq!(
                stats.bulk_fallbacks(),
                0,
                "{proc} @{payload}B: steady-state calls must never fall back \
                 to a per-call segment"
            );
            assert_eq!(
                fallback_env.binding.state().stats.bulk_fallbacks(),
                fallback_env.binding.state().stats.calls(),
                "{proc} @{payload}B: the forced leg must fall back on every call"
            );

            // Time the transport cycles on the arena leg's real binding
            // state: its arena, domains and kernel.
            let state = arena_env.binding.state();
            let arena = state.bulk.as_ref().expect("oob interface has an arena");
            let kernel = arena_env.binding.runtime().kernel();
            let cpu = kernel.machine().cpu(0);
            // The marshaled segment: u32 length prefix + payload, exactly
            // what the client stub hands the transport.
            let mut seg = (payload as u32).to_le_bytes().to_vec();
            seg.resize(4 + payload, 0xAB);
            let mut reread = vec![0u8; seg.len()];

            let (arena_ns, fallback_ns) = time_legs(iters, |leg| match leg {
                Leg::Arena => arena_cycle(arena, &state.server, cpu, &seg, &mut reread),
                Leg::Fallback => {
                    fallback_cycle(kernel, &state.client, &state.server, cpu, &seg, &mut reread)
                }
            });

            points.push(BulkPoint {
                proc,
                payload,
                arena_ns,
                fallback_ns,
                speedup: fallback_ns / arena_ns,
                arena_virtual_ns: arena_virtual.as_nanos(),
                fallback_virtual_ns: fallback_virtual.as_nanos(),
            });
        }
    }
    BulkBenchReport { points }
}

/// Renders the report.
pub fn render(r: &BulkBenchReport) -> String {
    let mut out = String::from(
        "Bulk plane: bind-time arena vs per-call OOB segments (host wall-clock, transport cycle)\n\
         proc      payload(B)  arena(ns)  fallback(ns)  speedup  virt-arena(ns)  virt-fallback(ns)\n\
         ----------------------------------------------------------------------------------------\n",
    );
    for p in &r.points {
        out.push_str(&format!(
            "{:<9} {:>10} {:>10.0} {:>13.0} {:>7.2}x {:>15} {:>17}\n",
            p.proc,
            p.payload,
            p.arena_ns,
            p.fallback_ns,
            p.speedup,
            p.arena_virtual_ns,
            p.fallback_virtual_ns
        ));
    }
    for f in r.gate_failures() {
        out.push_str(&format!("GATE: {f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_legs_work_and_charge_the_pinned_delta() {
        // A tiny run exercises the identity and zero-fallback assertions
        // inside `run` on every sweep point.
        let r = run(2);
        assert_eq!(r.points.len(), 2 * PAYLOADS.len());
        for p in &r.points {
            assert!(p.arena_ns > 0.0 && p.fallback_ns > 0.0);
            assert_eq!(
                p.fallback_virtual_ns - p.arena_virtual_ns,
                OOB_SEGMENT_COST.as_nanos()
            );
        }
    }
}
