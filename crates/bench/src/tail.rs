//! Site-scale open-loop tail-latency benchmark with per-phase p99
//! attribution.
//!
//! `workload::site` emits the plan — hundreds of interfaces, tens of
//! thousands of bindings, seeded exponential arrivals mixing serial
//! calls, `call_batch` ring flushes, and bulk-arena payloads. This
//! module executes it on a K-CPU simulated C-VAX Firefly and accounts
//! for the tail three ways:
//!
//! * **Per-mix quantiles.** Every call's *open-loop* virtual latency
//!   (completion − scheduled arrival, so backlog queueing counts) lands
//!   in an HDR [`obs::TailHistogram`] per workload mix; host wall time
//!   is recorded alongside but never gated — the host runs a simulator.
//! * **A windowed time-series** over virtual completion time, so a burst
//!   that queues behind a batch or a bulk copy shows up in *its* window's
//!   p99 instead of being averaged away.
//! * **Tail attribution.** Calls strictly above the overall virtual p99
//!   are joined with their flight-recorder spans (every charge site
//!   emits one, even on unmetered calls) and decomposed into phase
//!   groups — open-loop queue wait, trap/crossing, cached processor
//!   handoffs, stubs, copies, A-/E-stack waits, ring descriptor ops,
//!   dispatch — whose shares sum to 100 % of the accounted virtual time
//!   by construction. The flight ring's dropped counter turns silent
//!   sampling into a reported *coverage* number.
//!
//! Multiprocessor runs dispatch each arrival on the earliest-clock CPU
//! that is *not* parked idling in a server context (falling back to the
//! global earliest only when protecting the cache would queue the
//! arrival), and park the finishing CPU idling in the *client's*
//! context — processors cached in server contexts accumulate from the
//! return path's own exchange (Section 3.4), and a window-boundary
//! `prod_idle_processors` pass rebalances them toward the domains with
//! the most claim misses. That flywheel is what `lrpc::call`'s
//! idle-processor claim exercises under contention.
//! [`run_experiment`] runs the same arrival schedule four ways — 1-CPU
//! baseline, K-CPU with domain caching, K-CPU without, and K-CPU with
//! histogram-driven adaptive A-stack sizing — and gates the deltas.
//!
//! Determinism contract: everything under the `virtual` key of the
//! persisted entry is a pure function of the [`TailSpec`] — same spec,
//! byte-identical stats — which is what lets `BENCH_tail.json` gate p99
//! across PRs at a tight tolerance.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use firefly::fault::{FaultConfig, FaultPlan};
use firefly::meter::Phase;
use firefly::time::Nanos;
use firefly::vm::ContextId;
use idl::wire::Value;
use kernel::thread::Thread;
use lrpc::{AStackPolicy, AdaptConfig, AdaptPlan, Binding, Handler, Reply, ServerCtx, TestRuntime};
use obs::latency::{TailHistogram, TailSnapshot, WindowedSeries};
use workload::site::{
    generate_site, interface_name, CallKind, SitePlan, SiteSpec, PROC_GET, PROC_PUT, PROC_SEND,
};

use crate::common::flight_lock;

/// Client domains the bindings are spread over (bindings round-robin).
pub const CLIENT_DOMAINS: usize = 8;

/// Relative p99 regression the cross-PR gate tolerates. The virtual
/// stats are deterministic, so any slack only absorbs *intentional*
/// cost-model drift, not noise.
pub const P99_TOLERANCE: f64 = 0.05;

/// Minimum relative p99 improvement the K-CPU domain-caching leg must
/// show over the 1-CPU baseline at the same arrival schedule.
pub const MULTI_CPU_MIN_IMPROVEMENT: f64 = 0.20;

/// Relative cross-run tolerance on the caching-on/off p99 delta. Like
/// [`P99_TOLERANCE`] this absorbs intentional cost-model drift only.
pub const DELTA_TOLERANCE: f64 = 0.05;

/// Minimum share of above-p99 calls whose spans survived in the flight
/// ring. Check-sized runs size the ring to hold everything, so this only
/// trips if the ring was created too small (or shrunk by another user).
pub const MIN_SPAN_COVERAGE: f64 = 0.95;

/// Flight-ring capacity ceiling, spans (~40 B each).
const MAX_FLIGHT_CAPACITY: usize = 2_000_000;

/// Spans a single call can emit, with headroom.
const SPANS_PER_CALL: usize = 24;

/// What one tail run executes: the site plan spec, the machine shape,
/// and the injected regression knob used to prove the gate trips.
#[derive(Clone, Debug, PartialEq)]
pub struct TailSpec {
    pub site: SiteSpec,
    /// CPUs of the simulated Firefly the main legs run on.
    pub cpus: usize,
    /// Idle-processor domain caching for the main and adaptive legs.
    /// [`run_experiment`] always runs its A/B leg with caching off, so
    /// forcing this off makes the two legs identical and trips the
    /// positive-delta gate — the CI inverted step.
    pub domain_caching: bool,
    /// Whether the experiment runs the adaptive A-stack sizing leg.
    pub adaptive: bool,
    /// When nonzero, every dispatch is delayed this many virtual µs via
    /// the fault plane — the "known regression" the gate must catch.
    /// Runs with a nonzero knob are never persisted.
    pub dispatch_delay_us: u64,
}

impl TailSpec {
    pub fn full() -> TailSpec {
        TailSpec {
            site: SiteSpec::full(),
            cpus: 4,
            domain_caching: true,
            adaptive: true,
            dispatch_delay_us: 0,
        }
    }

    pub fn ci() -> TailSpec {
        TailSpec {
            site: SiteSpec::ci(),
            cpus: 4,
            domain_caching: true,
            adaptive: true,
            dispatch_delay_us: 0,
        }
    }
}

/// The workload mixes stats are reported for.
pub const MIXES: [&str; 4] = ["all", "serial", "batch", "bulk"];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mix {
    Serial,
    Batch,
    Bulk,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Serial => "serial",
            Mix::Batch => "batch",
            Mix::Bulk => "bulk",
        }
    }
}

/// Quantile summary of one mix, virtual or host ns.
#[derive(Clone, Debug, PartialEq)]
pub struct MixStats {
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    pub mean: f64,
}

impl MixStats {
    fn from_snapshot(s: &TailSnapshot) -> MixStats {
        MixStats {
            count: s.count,
            p50: s.quantile(0.50).unwrap_or(0),
            p90: s.quantile(0.90).unwrap_or(0),
            p99: s.quantile(0.99).unwrap_or(0),
            p999: s.quantile(0.999).unwrap_or(0),
            max: s.max,
            mean: s.mean(),
        }
    }
}

/// One window of the virtual-time latency series.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRow {
    pub start_ns: u64,
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// One phase group's share of the above-p99 virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseShare {
    pub group: &'static str,
    pub ns: u64,
    pub share: f64,
}

/// Everything one tail run measured.
#[derive(Clone, Debug)]
pub struct TailReport {
    pub spec: TailSpec,
    /// CPUs this leg actually ran on (the experiment overrides the spec
    /// for its baseline leg).
    pub cpus: usize,
    /// Whether idle-processor domain caching was on for this leg.
    pub domain_caching: bool,
    /// Whether an adaptive A-stack sizing plan was applied.
    pub adaptive: bool,
    /// Individual calls executed (batch arrivals expanded).
    pub calls: u64,
    /// Calls that returned an error (none expected on the clean plan).
    pub errors: u64,
    /// Virtual-latency stats per mix, keyed in [`MIXES`] order.
    pub virt: Vec<(&'static str, MixStats)>,
    /// Host wall-clock stats per mix (informational, not gated).
    pub host: Vec<(&'static str, MixStats)>,
    /// Virtual-time latency series, window width `spec.site.window_ns`.
    pub windows: Vec<WindowRow>,
    /// Above-p99 phase decomposition, descending by time.
    pub attribution: Vec<PhaseShare>,
    /// Calls strictly above the overall virtual p99.
    pub tail_calls: u64,
    /// Tail calls whose flight spans survived to be joined.
    pub accounted_tail_calls: u64,
    /// `accounted / tail_calls` (1.0 when the tail is empty).
    pub span_coverage: f64,
    /// Flight spans overwritten unread during this run (process-wide
    /// delta of `obs_flight_dropped_total`).
    pub dropped_spans: u64,
    /// Idle-processor claims that found a cached context, summed over
    /// the per-interface `lrpc_domain_cache_hits:*` counters.
    pub domain_cache_hits: u64,
    /// Claims that fell back to a full context switch.
    pub domain_cache_misses: u64,
    /// A-stack acquires that found their class free list empty.
    pub astack_wait_events: u64,
    /// Latest virtual clock across every CPU at the end of the run.
    pub total_virtual_ns: u64,
    /// Host wall time of the measured loop.
    pub host_wall_ms: f64,
}

/// Maps a flight-span phase code onto an attribution group. The groups
/// follow the ISSUE's taxonomy: crossing (trap/transfer/switch), cached
/// processor handoffs (Section 3.4 exchanges, split out so the tail
/// shows cached vs full-context-switch transfer time), stubs, copies,
/// resource waits (A-stack/E-stack), ring descriptor ops,
/// dispatch+validation, the server procedure itself, and a residue.
fn phase_group(code: u16) -> &'static str {
    use Phase::*;
    match Phase::from_code(code) {
        Trap | KernelTransfer | ContextSwitch => "trap+crossing",
        ProcessorExchange => "cached handoff",
        ClientStub | ServerStub | ProcedureCall | Marshal => "stub",
        ArgCopy | MessageTransfer | BufferManagement | OobSegment => "copy",
        Wait => "astack/estack wait",
        QueueOp => "ring descriptor ops",
        Dispatch | Scheduling | Validation => "dispatch+validate",
        ServerProcedure => "server procedure",
        Network | Other => "other",
    }
}

/// The synthetic group for open-loop backlog (arrival happened while the
/// CPU was still serving earlier traffic); not a flight span.
const QUEUE_WAIT_GROUP: &str = "open-loop queue wait";

struct SiteEnv {
    rt: Arc<lrpc::LrpcRuntime>,
    threads: Vec<Arc<Thread>>,
    bindings: Vec<Binding>,
    /// Per-interface server context: the dispatcher avoids stealing CPUs
    /// idling in one of these (a cached server processor is worth more
    /// as a claim target than as a dispatch slot).
    server_ctxs: Vec<ContextId>,
    /// Per-client-domain context: a CPU that finishes a call holds the
    /// client's context, so that is where it parks as an idle processor.
    client_ctxs: Vec<ContextId>,
}

fn handlers(bulk: bool) -> Vec<Handler> {
    let mut v: Vec<Handler> = vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(a.wrapping_add(*b))))
        }),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(*h)))
        }),
    ];
    if bulk {
        v.push(Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(data) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(data.len() as i32)))
        }));
    }
    v
}

fn build_env(
    plan: &SitePlan,
    cpus: usize,
    domain_caching: bool,
    adapt: Option<Arc<AdaptPlan>>,
    dispatch_delay_us: u64,
) -> SiteEnv {
    // `Fail` keeps an exhausted A-stack class deterministic: a batch push
    // that finds the free list empty flushes the ring and retries instead
    // of blocking the single driver thread on a condvar.
    let mut builder = TestRuntime::new()
        .cpus(cpus)
        .domain_caching(domain_caching)
        .astack_policy(AStackPolicy::Fail);
    if let Some(plan) = adapt {
        builder = builder.adapt(plan);
    }
    let rt = builder.build();
    if dispatch_delay_us > 0 {
        rt.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            dispatch_delay_us,
            ..FaultConfig::default()
        })));
    }
    let mut server_ctxs = Vec::with_capacity(plan.idls.len());
    for (i, idl) in plan.idls.iter().enumerate() {
        let server = rt.kernel().create_domain(format!("site-srv-{i:03}"));
        server_ctxs.push(server.ctx().id());
        rt.export(&server, idl, handlers(plan.bulk_flavored[i]))
            .expect("site interface exports");
    }
    let clients: Vec<_> = (0..CLIENT_DOMAINS)
        .map(|i| rt.kernel().create_domain(format!("site-client-{i}")))
        .collect();
    let client_ctxs: Vec<ContextId> = clients.iter().map(|c| c.ctx().id()).collect();
    let threads: Vec<Arc<Thread>> = clients
        .iter()
        .map(|c| rt.kernel().spawn_thread(c))
        .collect();
    let bindings: Vec<Binding> = (0..plan.spec.bindings)
        .map(|b| {
            let iface = plan.binding_interface(b);
            rt.import(&clients[b % CLIENT_DOMAINS], &interface_name(iface))
                .expect("site binding imports")
        })
        .collect();
    SiteEnv {
        rt,
        threads,
        bindings,
        server_ctxs,
        client_ctxs,
    }
}

struct CallRec {
    trace: u64,
    mix: Mix,
    latency_ns: u64,
    queue_wait_ns: u64,
    completion_ns: u64,
    wall_ns: u64,
}

/// Runs the spec as a single leg (the machine shape is taken from the
/// spec verbatim). Holds the process-wide flight lock for the whole
/// toggle-run-snapshot window; the traffic executes on a fresh worker
/// thread so its flight ring is created at the requested capacity even
/// if this thread recorded (with a smaller ring) earlier in the process.
pub fn run(spec: &TailSpec) -> TailReport {
    let plan = generate_site(&spec.site);
    run_leg(spec, &plan, spec.cpus, spec.domain_caching, None).0
}

/// One experiment leg: builds a fresh environment, replays the plan, and
/// also harvests the runtime's adaptive sizing plan for a later leg.
fn run_leg(
    spec: &TailSpec,
    plan: &SitePlan,
    cpus: usize,
    domain_caching: bool,
    adapt: Option<Arc<AdaptPlan>>,
) -> (TailReport, AdaptPlan) {
    let adaptive = adapt.is_some();
    let env = build_env(plan, cpus, domain_caching, adapt, spec.dispatch_delay_us);

    let _flight = flight_lock();
    let capacity = (plan.total_calls() * SPANS_PER_CALL).clamp(4096, MAX_FLIGHT_CAPACITY);
    obs::flight::enable_with_capacity(capacity);
    let dropped_before = obs::flight::dropped_total();

    let wall_start = Instant::now();
    let (records, errors) =
        std::thread::scope(|s| s.spawn(|| execute(plan, &env)).join().expect("tail worker"));
    let host_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    obs::flight::disable();
    let dropped_spans = obs::flight::dropped_total() - dropped_before;
    let total_virtual_ns = env.rt.kernel().machine().max_now().as_nanos();
    let astack_wait_events = env.rt.astack_wait_events();
    let sum_counter = |prefix: &str| -> u64 {
        (0..plan.spec.interfaces)
            .map(|i| {
                env.rt
                    .metrics()
                    .counter(&format!("{prefix}:{}", interface_name(i)))
                    .get()
            })
            .sum()
    };
    let domain_cache_hits = sum_counter("lrpc_domain_cache_hits");
    let domain_cache_misses = sum_counter("lrpc_domain_cache_misses");
    let harvested = env.rt.adapt_plan(&AdaptConfig::default());

    // Per-mix quantiles, virtual and host.
    let virt_all = TailHistogram::new();
    let host_all = TailHistogram::new();
    let mut virt_mix: BTreeMap<&'static str, TailHistogram> = BTreeMap::new();
    let mut host_mix: BTreeMap<&'static str, TailHistogram> = BTreeMap::new();
    let mut windows = WindowedSeries::new(spec.site.window_ns);
    for r in &records {
        virt_all.observe(r.latency_ns);
        host_all.observe(r.wall_ns);
        virt_mix
            .entry(r.mix.name())
            .or_default()
            .observe(r.latency_ns);
        host_mix.entry(r.mix.name()).or_default().observe(r.wall_ns);
        windows.observe(r.completion_ns, r.latency_ns);
    }
    let stats_for = |map: &BTreeMap<&'static str, TailHistogram>,
                     all: &TailHistogram|
     -> Vec<(&'static str, MixStats)> {
        MIXES
            .iter()
            .map(|&m| {
                let snap = if m == "all" {
                    all.snapshot()
                } else {
                    map.get(m).map(|h| h.snapshot()).unwrap_or_default()
                };
                (m, MixStats::from_snapshot(&snap))
            })
            .collect()
    };
    let virt = stats_for(&virt_mix, &virt_all);
    let host = stats_for(&host_mix, &host_all);

    let window_rows: Vec<WindowRow> = windows
        .snapshot()
        .into_iter()
        .map(|(start_ns, s)| WindowRow {
            start_ns,
            count: s.count,
            p50: s.quantile(0.50).unwrap_or(0),
            p99: s.quantile(0.99).unwrap_or(0),
            max: s.max,
        })
        .collect();

    // Tail attribution: join calls strictly above the overall virtual
    // p99 with their flight spans.
    let p99_all = virt_all.snapshot().quantile(0.99).unwrap_or(0);
    let tail_recs: Vec<&CallRec> = records.iter().filter(|r| r.latency_ns > p99_all).collect();
    let tail_traces: HashSet<u64> = tail_recs.iter().map(|r| r.trace).collect();
    let mut spans_by_trace: BTreeMap<u64, Vec<(u16, u64)>> = BTreeMap::new();
    for span in obs::flight::snapshot() {
        let raw = span.trace.raw();
        if tail_traces.contains(&raw) {
            spans_by_trace
                .entry(raw)
                .or_default()
                .push((span.phase, span.dur_ns));
        }
    }
    let mut group_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut accounted = 0u64;
    let mut accounted_ns = 0u64;
    for r in &tail_recs {
        let Some(spans) = spans_by_trace.get(&r.trace) else {
            continue; // spans overwritten; reported via coverage
        };
        accounted += 1;
        *group_ns.entry(QUEUE_WAIT_GROUP).or_insert(0) += r.queue_wait_ns;
        accounted_ns += r.queue_wait_ns;
        for &(code, dur) in spans {
            *group_ns.entry(phase_group(code)).or_insert(0) += dur;
            accounted_ns += dur;
        }
    }
    let mut attribution: Vec<PhaseShare> = group_ns
        .into_iter()
        .map(|(group, ns)| PhaseShare {
            group,
            ns,
            share: if accounted_ns > 0 {
                ns as f64 / accounted_ns as f64
            } else {
                0.0
            },
        })
        .collect();
    attribution.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.group.cmp(b.group)));
    let tail_calls = tail_recs.len() as u64;
    let span_coverage = if tail_calls == 0 {
        1.0
    } else {
        accounted as f64 / tail_calls as f64
    };

    let report = TailReport {
        spec: spec.clone(),
        cpus,
        domain_caching,
        adaptive,
        calls: records.len() as u64,
        errors,
        virt,
        host,
        windows: window_rows,
        attribution,
        tail_calls,
        accounted_tail_calls: accounted,
        span_coverage,
        dropped_spans,
        domain_cache_hits,
        domain_cache_misses,
        astack_wait_events,
        total_virtual_ns,
        host_wall_ms,
    };
    (report, harvested)
}

/// The measured loop: replays the arrival schedule open-loop over the
/// simulated CPUs. Runs on its own thread (fresh flight ring).
///
/// The driver is identical across experiment legs; only the runtime
/// config differs. Each arrival is dispatched on the CPU with the
/// earliest virtual clock, and each finishing CPU is parked as an idle
/// processor in the called server's context so a later call into that
/// server can claim it with a cheap processor exchange (Section 3.4).
/// Parked CPUs already past the arrival instant are unparked first: a
/// real idle processor cannot drag its claimer forward in time.
fn execute(plan: &SitePlan, env: &SiteEnv) -> (Vec<CallRec>, u64) {
    let machine = env.rt.kernel().machine();
    let n = machine.num_cpus();
    let adapt = env.rt.config().adapt.clone();
    let window_ns = plan.spec.window_ns.max(1);
    let mut next_window = window_ns;
    let put_name = vec![0u8; 16];
    let mut records = Vec::with_capacity(plan.total_calls());
    let mut errors = 0u64;
    // Trailing service-time estimate (completion − arrival of the last
    // executed call), used to spot arrivals due before the current call
    // finishes.
    let mut last_service_ns = 0u64;
    for (ai, arrival) in plan.arrivals.iter().enumerate() {
        let at = Nanos::from_nanos(arrival.at_ns);
        // Window boundary: rerun the idle-processor prodding policy and,
        // when adaptive sizing is on, re-apply the plan to live bindings.
        while arrival.at_ns >= next_window {
            env.rt.rebalance_idle_processors();
            if let Some(plan) = &adapt {
                env.rt.apply_adapt(plan);
            }
            next_window += window_ns;
        }
        // Dispatch on the earliest-clock CPU (ties to the lowest id),
        // like a run queue placing the next ready thread. One twist: a
        // CPU cached in a *server* context is worth more as a claim
        // target than as a dispatch slot (stealing it forfeits the
        // domain-caching hit of every later call into that server), so
        // when some other CPU is already free at the arrival instant
        // the dispatcher takes that one instead. The protection is
        // never worth a queue: if every non-cached CPU is still busy at
        // the arrival, plain global min-clock wins.
        let mut global = (u64::MAX, 0usize);
        let mut uncached = (u64::MAX, 0usize);
        for i in 0..n {
            let c = machine.cpu(i);
            let now = c.now().as_nanos();
            if now < global.0 {
                global = (now, i);
            }
            let cached = c
                .idle_in()
                .is_some_and(|ctx| env.server_ctxs.contains(&ctx));
            if !cached && now < uncached.0 {
                uncached = (now, i);
            }
        }
        let cpu_id = if uncached.0 <= arrival.at_ns {
            uncached.1
        } else {
            global.1
        };
        let cpu = machine.cpu(cpu_id);
        // The dispatch CPU runs a client thread now; it is no longer an
        // idle processor anyone may claim.
        cpu.set_idle_in(None);
        // A parked CPU whose clock is already past this arrival is, at
        // the arrival instant, still finishing its previous call — it
        // cannot be claimed without dragging the caller forward in
        // time. Suspend its parking for the duration of this call and
        // restore it afterwards: it *is* idle for later arrivals.
        let mut suspended: Vec<(usize, ContextId)> = Vec::new();
        for i in 0..n {
            if i == cpu_id {
                continue;
            }
            let other = machine.cpu(i);
            if let Some(ctx) = other.idle_in() {
                if other.now() > at {
                    other.set_idle_in(None);
                    suspended.push((i, ctx));
                }
            }
        }
        // Reservation against claim anachronism. Calls execute one at a
        // time here, but on real hardware an arrival due *before* this
        // call's return would grab an idle processor at its own arrival
        // instant — beating the return-side claim that this simulation
        // commits first. For every arrival expected to land before this
        // call completes, set aside the oldest-clock parked CPU: claims
        // cannot consume a processor that, in real time, was already
        // taken by an earlier event. Restored with the rest after the
        // call; the next arrival then dispatches onto it normally.
        if last_service_ns > 0 {
            let deadline = arrival.at_ns.saturating_add(last_service_ns);
            let due = plan.arrivals[ai + 1..]
                .iter()
                .take_while(|a| a.at_ns <= deadline)
                .count();
            for _ in 0..due {
                let mut pick: Option<(u64, usize)> = None;
                for i in 0..n {
                    if i == cpu_id {
                        continue;
                    }
                    let other = machine.cpu(i);
                    if other.idle_in().is_some() {
                        let now = other.now().as_nanos();
                        if pick.is_none_or(|(c, _)| now < c) {
                            pick = Some((now, i));
                        }
                    }
                }
                let Some((_, i)) = pick else { break };
                let other = machine.cpu(i);
                suspended.push((i, other.idle_in().expect("picked parked")));
                other.set_idle_in(None);
            }
        }
        // Open loop: an idle CPU sleeps until the scheduled arrival; a
        // busy one is already past it and the backlog becomes queue wait
        // inside the measured latency.
        cpu.advance_to(at);
        let queue_wait_ns = (cpu.now() - at).as_nanos();
        let binding = &env.bindings[arrival.binding];
        let thread = &env.threads[arrival.binding % CLIENT_DOMAINS];
        // A finished call leaves its final CPU holding the *client's*
        // context (the return path ends in the caller's domain), so that
        // is the context it advertises while idling. Cached *server*
        // processors are parked by the runtime itself at the return-side
        // processor exchange, and rebalanced by the window prodding.
        let client_ctx = env.client_ctxs[arrival.binding % CLIENT_DOMAINS];
        let wall = Instant::now();
        match arrival.kind {
            CallKind::Serial { proc } => {
                let args: Vec<Value> = match proc {
                    PROC_GET => vec![Value::Int32(1), Value::Int32(2)],
                    PROC_PUT => vec![Value::Int32(1), Value::Bytes(put_name.clone())],
                    _ => unreachable!("serial mix only draws Get/Put"),
                };
                match binding.call_unmetered(cpu_id, thread, proc, &args) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("serial proc={proc} err={e:?}");
                        errors += 1;
                    }
                    Ok(out) => {
                        let end = machine.cpu(out.end_cpu);
                        records.push(CallRec {
                            trace: out.trace.raw(),
                            mix: Mix::Serial,
                            latency_ns: (end.now() - at).as_nanos(),
                            queue_wait_ns,
                            completion_ns: end.now().as_nanos(),
                            wall_ns: wall.elapsed().as_nanos() as u64,
                        });
                        end.set_idle_in(Some(client_ctx));
                    }
                    Err(_) => errors += 1,
                }
            }
            CallKind::Bulk { bytes } => {
                let args = vec![Value::Var(vec![0xA5; bytes as usize])];
                match binding.call_unmetered(cpu_id, thread, PROC_SEND, &args) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("bulk bytes={} err={e:?}", args.len());
                        errors += 1;
                    }
                    Ok(out) => {
                        let end = machine.cpu(out.end_cpu);
                        records.push(CallRec {
                            trace: out.trace.raw(),
                            mix: Mix::Bulk,
                            latency_ns: (end.now() - at).as_nanos(),
                            queue_wait_ns,
                            completion_ns: end.now().as_nanos(),
                            wall_ns: wall.elapsed().as_nanos() as u64,
                        });
                        end.set_idle_in(Some(client_ctx));
                    }
                    Err(_) => errors += 1,
                }
            }
            CallKind::Batch { calls } => {
                let requests: Vec<(usize, Vec<Value>)> = (0..calls)
                    .map(|i| (PROC_GET, vec![Value::Int32(i as i32), Value::Int32(2)]))
                    .collect();
                match binding.call_batch(cpu_id, thread, requests) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("batch calls={calls} err={e:?}");
                        errors += calls as u64;
                    }
                    Ok(out) => {
                        // Every batched call completes at the reap; its
                        // open-loop latency runs from the shared arrival.
                        // Ring flushes never exchange processors, so the
                        // batch completes on the dispatch CPU.
                        let completion_ns = cpu.now().as_nanos();
                        let latency_ns = (cpu.now() - at).as_nanos();
                        let wall_each = wall.elapsed().as_nanos() as u64 / calls.max(1) as u64;
                        for res in &out.results {
                            match res {
                                Ok(o) => records.push(CallRec {
                                    trace: o.trace.raw(),
                                    mix: Mix::Batch,
                                    latency_ns,
                                    queue_wait_ns,
                                    completion_ns,
                                    wall_ns: wall_each,
                                }),
                                Err(_) => errors += 1,
                            }
                        }
                        cpu.set_idle_in(Some(client_ctx));
                    }
                    Err(_) => errors += calls as u64,
                }
            }
        }
        if let Some(rec) = records.last() {
            last_service_ns = rec.completion_ns.saturating_sub(arrival.at_ns);
        }
        // Still-idle CPUs whose parking was suspended for this call get
        // their cached context back. (A suspended CPU cannot have been
        // claimed, and the finishing CPU was never suspended.)
        for (i, ctx) in suspended {
            let other = machine.cpu(i);
            if other.idle_in().is_none() {
                other.set_idle_in(Some(ctx));
            }
        }
    }
    (records, errors)
}

/// The four-leg multi-CPU experiment over one arrival schedule:
///
/// * **1-CPU baseline** — same spec on a uniprocessor (`k1_p99`).
/// * **Main leg** — `spec.cpus` CPUs, `spec.domain_caching`, static
///   A-stack sizing. This is the persisted, cross-PR-gated report.
/// * **A/B leg** — identical machine with domain caching forced off;
///   `caching_off_p99 − main.p99` is the gated caching delta.
/// * **Adaptive leg** — the main leg rerun with the sizing plan
///   harvested from the main leg's own histograms applied at import
///   (and re-applied at window boundaries).
///
/// Fault-injected specs run the main leg only: the injected delay is a
/// gate-tripping probe, not an experiment.
#[derive(Clone, Debug)]
pub struct TailExperiment {
    pub main: TailReport,
    pub k1_p99: Option<u64>,
    /// The A/B leg's **serial-mix** p99. The caching deltas are
    /// measured on the serial mix because only ordinary calls can
    /// exchange processors — batch ring flushes pin the descriptor
    /// protocol to the dispatch CPU, so their share of the overall p99
    /// dilutes the A/B signal with traffic the optimization cannot
    /// touch.
    pub caching_off_p99: Option<u64>,
    /// The A/B leg's serial-mix *mean*. The positivity gate lives on
    /// the mean delta rather than the p99 delta: with a depth-1
    /// per-context cache, back-to-back arrivals on the same interface
    /// are structural misses, so *both* legs' serial p99 sits on the
    /// shared miss plateau (full context switch + fresh-E-stack
    /// premium) and their p99 delta is legitimately zero while the
    /// caching wins land across the body of the distribution — the
    /// same average-call-time framing the paper itself evaluates with.
    pub caching_off_serial_mean: Option<f64>,
    pub adaptive_p99: Option<u64>,
    pub adaptive_wait_events: Option<u64>,
}

pub fn run_experiment(spec: &TailSpec) -> TailExperiment {
    let plan = generate_site(&spec.site);
    let (main, harvested) = run_leg(spec, &plan, spec.cpus, spec.domain_caching, None);
    if spec.dispatch_delay_us > 0 {
        return TailExperiment {
            main,
            k1_p99: None,
            caching_off_p99: None,
            caching_off_serial_mean: None,
            adaptive_p99: None,
            adaptive_wait_events: None,
        };
    }
    let (k1, _) = run_leg(spec, &plan, 1, spec.domain_caching, None);
    let (off, _) = run_leg(spec, &plan, spec.cpus, false, None);
    let adaptive = spec.adaptive.then(|| {
        run_leg(
            spec,
            &plan,
            spec.cpus,
            spec.domain_caching,
            Some(Arc::new(harvested)),
        )
        .0
    });
    TailExperiment {
        main,
        k1_p99: Some(k1.p99_all()),
        caching_off_p99: Some(off.p99_of("serial")),
        caching_off_serial_mean: Some(off.mean_of("serial")),
        adaptive_p99: adaptive.as_ref().map(TailReport::p99_all),
        adaptive_wait_events: adaptive.as_ref().map(|r| r.astack_wait_events),
    }
}

impl TailExperiment {
    /// `caching_off_serial_mean − main_serial_mean`, rounded to whole
    /// ns: virtual ns the idle-processor optimization shaves off the
    /// average serial call at the same arrival schedule. This is the
    /// positivity-gated and cross-run-drift-gated caching delta.
    pub fn caching_delta(&self) -> Option<i64> {
        self.caching_off_serial_mean
            .map(|off| (off - self.main.mean_of("serial")).round() as i64)
    }

    /// `caching_off_serial_p99 − main_serial_p99`: persisted for the
    /// record, but not positivity-gated — see
    /// [`TailExperiment::caching_off_serial_mean`] for why the p99
    /// delta can legitimately sit at zero.
    pub fn caching_p99_delta(&self) -> Option<i64> {
        self.caching_off_p99
            .map(|off| off as i64 - self.main.p99_of("serial") as i64)
    }

    /// Run-local experiment gates on top of the main leg's own:
    /// multi-CPU speedup over the 1-CPU baseline, a positive caching
    /// delta, actual cache hits, and fewer A-stack stalls under
    /// adaptive sizing.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = self.main.gate_failures();
        let multi = self.main.cpus > 1;
        if let Some(k1) = self.k1_p99 {
            if multi && self.main.domain_caching {
                let limit = k1 as f64 * (1.0 - MULTI_CPU_MIN_IMPROVEMENT);
                if self.main.p99_all() as f64 > limit {
                    problems.push(format!(
                        "{}-CPU p99 {} ns does not improve >={:.0}% on the 1-CPU \
                         baseline {} ns (limit {:.0})",
                        self.main.cpus,
                        self.main.p99_all(),
                        MULTI_CPU_MIN_IMPROVEMENT * 100.0,
                        k1,
                        limit
                    ));
                }
                if self.main.domain_cache_hits == 0 {
                    problems
                        .push("domain caching on but no idle-processor claim ever hit".to_string());
                }
            }
        }
        if let Some(off) = self.caching_off_serial_mean {
            if multi && self.caching_delta().expect("off mean present") <= 0 {
                problems.push(format!(
                    "domain caching does not help: serial mean {:.0} ns with the \
                     main config vs {:.0} ns with caching off",
                    self.main.mean_of("serial"),
                    off
                ));
            }
        }
        if let Some(wait) = self.adaptive_wait_events {
            if wait >= self.main.astack_wait_events {
                problems.push(format!(
                    "adaptive sizing did not reduce A-stack stalls: {wait} vs {} static",
                    self.main.astack_wait_events
                ));
            }
        }
        problems
    }

    /// Cross-PR gates: the main leg's p99 (like [`TailReport`]) and the
    /// caching delta, both against the previous persisted run.
    pub fn regression_failures(
        &self,
        prev_p99_all: Option<u64>,
        prev_delta: Option<i64>,
    ) -> Vec<String> {
        let mut problems = self.main.regression_failures(prev_p99_all);
        if let (Some(delta), Some(prev)) = (self.caching_delta(), prev_delta) {
            if prev > 0 && (delta as f64 - prev as f64).abs() > prev as f64 * DELTA_TOLERANCE {
                problems.push(format!(
                    "caching mean delta drifted: {delta} ns vs previous {prev} ns \
                     (tolerance {:.0}%)",
                    DELTA_TOLERANCE * 100.0
                ));
            }
        }
        problems
    }

    pub fn passes(&self, prev_p99_all: Option<u64>, prev_delta: Option<i64>) -> bool {
        self.gate_failures().is_empty()
            && self
                .regression_failures(prev_p99_all, prev_delta)
                .is_empty()
    }
}

impl TailReport {
    fn virt_stats(&self, mix: &str) -> &MixStats {
        &self
            .virt
            .iter()
            .find(|(m, _)| *m == mix)
            .expect("MIXES covers every mix")
            .1
    }

    /// The overall virtual p99 — the number the cross-PR gate pins.
    pub fn p99_all(&self) -> u64 {
        self.virt_stats("all").p99
    }

    /// The virtual p99 of one mix from [`MIXES`].
    pub fn p99_of(&self, mix: &str) -> u64 {
        self.virt_stats(mix).p99
    }

    /// The virtual mean of one mix from [`MIXES`].
    pub fn mean_of(&self, mix: &str) -> f64 {
        self.virt_stats(mix).mean
    }

    /// Run-local gate violations (quantile ordering, attribution
    /// closure, span coverage, clean execution).
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.errors > 0 {
            problems.push(format!("{} calls failed on a clean plan", self.errors));
        }
        for (mix, s) in self.virt.iter().chain(self.host.iter()) {
            if s.count == 0 {
                continue;
            }
            if !(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max) {
                problems.push(format!(
                    "{mix}: quantiles not monotone (p50={} p90={} p99={} p999={} max={})",
                    s.p50, s.p90, s.p99, s.p999, s.max
                ));
            }
        }
        if self.accounted_tail_calls > 0 {
            let total: f64 = self.attribution.iter().map(|p| p.share).sum();
            if (total - 1.0).abs() > 1e-6 {
                problems.push(format!(
                    "attribution shares sum to {total}, not 100% of accounted time"
                ));
            }
        }
        if self.span_coverage < MIN_SPAN_COVERAGE {
            problems.push(format!(
                "span coverage {:.3} below {MIN_SPAN_COVERAGE} ({} of {} tail calls joined, \
                 {} spans dropped)",
                self.span_coverage, self.accounted_tail_calls, self.tail_calls, self.dropped_spans
            ));
        }
        problems
    }

    /// The cross-PR gate: overall virtual p99 must not regress more than
    /// [`P99_TOLERANCE`] over the previous persisted run with identical
    /// parameters.
    pub fn regression_failures(&self, prev_p99_all: Option<u64>) -> Vec<String> {
        let mut problems = Vec::new();
        if let Some(prev) = prev_p99_all {
            let limit = prev as f64 * (1.0 + P99_TOLERANCE);
            if self.p99_all() as f64 > limit {
                problems.push(format!(
                    "virtual p99 regressed: {} ns vs previous {} ns (limit {:.0})",
                    self.p99_all(),
                    prev,
                    limit
                ));
            }
        }
        problems
    }

    pub fn passes(&self, prev_p99_all: Option<u64>) -> bool {
        self.gate_failures().is_empty() && self.regression_failures(prev_p99_all).is_empty()
    }
}

/// Renders one leg's report.
pub fn render(r: &TailReport) -> String {
    let mut out = format!(
        "Site tail latency: {} calls over {} arrivals, {:.1} virtual s, {:.0} host ms\n\
         ({} CPUs, domain caching {}{}, {} interfaces, {} bindings, mean gap {} ns, seed {}{})\n\n",
        r.calls,
        r.spec.site.arrivals,
        r.total_virtual_ns as f64 / 1e9,
        r.host_wall_ms,
        r.cpus,
        if r.domain_caching { "on" } else { "off" },
        if r.adaptive {
            ", adaptive A-stacks"
        } else {
            ""
        },
        r.spec.site.interfaces,
        r.spec.site.bindings,
        r.spec.site.mean_interarrival_ns,
        r.spec.site.seed,
        if r.spec.dispatch_delay_us > 0 {
            format!(", FAULT dispatch +{}us", r.spec.dispatch_delay_us)
        } else {
            String::new()
        }
    );
    let quant_rows = |stats: &[(&'static str, MixStats)]| -> Vec<Vec<String>> {
        stats
            .iter()
            .map(|(m, s)| {
                vec![
                    m.to_string(),
                    s.count.to_string(),
                    s.p50.to_string(),
                    s.p90.to_string(),
                    s.p99.to_string(),
                    s.p999.to_string(),
                    s.max.to_string(),
                    format!("{:.0}", s.mean),
                ]
            })
            .collect()
    };
    out.push_str("Virtual ns (open-loop: queueing included; gated):\n");
    out.push_str(&crate::common::format_table(
        &["mix", "count", "p50", "p90", "p99", "p999", "max", "mean"],
        &quant_rows(&r.virt),
    ));
    out.push_str("\nHost ns (simulator wall time; informational):\n");
    out.push_str(&crate::common::format_table(
        &["mix", "count", "p50", "p90", "p99", "p999", "max", "mean"],
        &quant_rows(&r.host),
    ));

    // The worst windows localize tail spikes in time.
    let mut worst: Vec<&WindowRow> = r.windows.iter().collect();
    worst.sort_by(|a, b| b.p99.cmp(&a.p99).then(a.start_ns.cmp(&b.start_ns)));
    out.push_str(&format!(
        "\nWorst windows by p99 ({} windows of {} ms):\n",
        r.windows.len(),
        r.spec.site.window_ns / 1_000_000
    ));
    let rows: Vec<Vec<String>> = worst
        .iter()
        .take(5)
        .map(|w| {
            vec![
                format!("{:.2}s", w.start_ns as f64 / 1e9),
                w.count.to_string(),
                w.p50.to_string(),
                w.p99.to_string(),
                w.max.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::common::format_table(
        &["window", "count", "p50", "p99", "max"],
        &rows,
    ));

    out.push_str(&format!(
        "\nAbove-p99 attribution ({} tail calls, {} joined, coverage {:.1}%, \
         {} spans dropped):\n",
        r.tail_calls,
        r.accounted_tail_calls,
        r.span_coverage * 100.0,
        r.dropped_spans
    ));
    let rows: Vec<Vec<String>> = r
        .attribution
        .iter()
        .map(|p| {
            vec![
                p.group.to_string(),
                p.ns.to_string(),
                format!("{:.1}%", p.share * 100.0),
            ]
        })
        .collect();
    out.push_str(&crate::common::format_table(
        &["phase", "ns", "share"],
        &rows,
    ));
    out.push_str(&format!(
        "\nDomain cache: {} hits, {} misses; A-stack stall events: {}\n",
        r.domain_cache_hits, r.domain_cache_misses, r.astack_wait_events
    ));
    for f in r.gate_failures() {
        out.push_str(&format!("GATE: {f}\n"));
    }
    out
}

/// Renders the full experiment: the main leg plus the A/B deltas.
pub fn render_experiment(e: &TailExperiment) -> String {
    let mut out = render(&e.main);
    let main_p99 = e.main.p99_all();
    if e.k1_p99.is_some() || e.caching_off_p99.is_some() {
        out.push_str("\nExperiment legs (same arrival schedule):\n");
    }
    if let Some(k1) = e.k1_p99 {
        out.push_str(&format!(
            "  1-CPU baseline p99: {k1} ns; {}-CPU main p99: {main_p99} ns ({:+.1}%)\n",
            e.main.cpus,
            (main_p99 as f64 / k1 as f64 - 1.0) * 100.0
        ));
    }
    if let Some(off) = e.caching_off_serial_mean {
        out.push_str(&format!(
            "  serial mean: {:.0} ns caching-on vs {off:.0} ns caching-off \
             (delta {} ns, gated)\n",
            e.main.mean_of("serial"),
            e.caching_delta().unwrap_or(0)
        ));
    }
    if let Some(off) = e.caching_off_p99 {
        out.push_str(&format!(
            "  serial p99: {} ns caching-on vs {off} ns caching-off (delta {} ns)\n",
            e.main.p99_of("serial"),
            e.caching_p99_delta().unwrap_or(0)
        ));
    }
    if let Some(p99) = e.adaptive_p99 {
        out.push_str(&format!(
            "  adaptive p99: {p99} ns; A-stack stalls {} adaptive vs {} static\n",
            e.adaptive_wait_events.unwrap_or(0),
            e.main.astack_wait_events
        ));
    }
    for f in e.gate_failures() {
        if !out.contains(&format!("GATE: {f}\n")) {
            out.push_str(&format!("GATE: {f}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dispatch_delay_us: u64) -> TailSpec {
        TailSpec {
            site: SiteSpec {
                seed: 11,
                interfaces: 8,
                bindings: 64,
                arrivals: 400,
                mean_interarrival_ns: 300_000,
                batch_share: 0.10,
                bulk_share: 0.15,
                batch_size: 4,
                window_ns: 10_000_000,
            },
            cpus: 1,
            domain_caching: false,
            adaptive: false,
            dispatch_delay_us,
        }
    }

    /// A multiprocessor spec dense enough that the 1-CPU baseline
    /// queues heavily while 4 CPUs usually have an idle processor
    /// parked and claimable.
    fn tiny_mp() -> TailSpec {
        TailSpec {
            site: SiteSpec {
                seed: 11,
                interfaces: 3,
                bindings: 64,
                arrivals: 600,
                mean_interarrival_ns: 600_000,
                batch_share: 0.10,
                bulk_share: 0.05,
                batch_size: 4,
                window_ns: 10_000_000,
            },
            cpus: 4,
            domain_caching: true,
            adaptive: true,
            dispatch_delay_us: 0,
        }
    }

    fn virt_digest(r: &TailReport) -> String {
        // Everything deterministic: virtual quantiles, windows,
        // attribution. (Host stats and wall time excluded.)
        format!("{:?}|{:?}|{:?}", r.virt, r.windows, r.attribution)
    }

    #[test]
    fn run_is_deterministic_and_passes_gates() {
        let a = run(&tiny(0));
        assert!(
            a.gate_failures().is_empty(),
            "gates failed: {:?}",
            a.gate_failures()
        );
        assert_eq!(a.errors, 0);
        assert!(a.calls as usize >= tiny(0).site.arrivals);
        assert!(a.tail_calls > 0, "an open-loop run must have a tail");
        assert!(
            (a.span_coverage - 1.0).abs() < f64::EPSILON,
            "ring sized for the whole run joins every tail call"
        );
        // Attribution must include real phase groups, not just queue wait.
        assert!(a.attribution.iter().any(|p| p.group == "stub"));
        let b = run(&tiny(0));
        assert_eq!(virt_digest(&a), virt_digest(&b), "same spec, same stats");
    }

    #[test]
    fn injected_dispatch_delay_trips_the_p99_gate() {
        let clean = run(&tiny(0));
        let faulted = run(&tiny(500));
        assert!(
            faulted.p99_all() > clean.p99_all(),
            "a 500us dispatch delay must inflate p99 ({} vs {})",
            faulted.p99_all(),
            clean.p99_all()
        );
        assert!(clean.regression_failures(Some(clean.p99_all())).is_empty());
        assert!(
            !faulted
                .regression_failures(Some(clean.p99_all()))
                .is_empty(),
            "the gate must catch the injected regression"
        );
    }

    #[test]
    fn multi_cpu_experiment_passes_its_gates() {
        let e = run_experiment(&tiny_mp());
        assert!(
            e.gate_failures().is_empty(),
            "experiment gates failed: {:?}\n{}",
            e.gate_failures(),
            render_experiment(&e)
        );
        assert!(e.main.domain_cache_hits > 0, "parked CPUs must be claimed");
        assert!(
            e.caching_delta().unwrap() > 0,
            "caching must shave the serial mean: {:?}",
            e.caching_delta()
        );
        assert!(
            e.caching_p99_delta().unwrap() >= 0,
            "caching must never worsen the serial p99: {:?}",
            e.caching_p99_delta()
        );
        assert!(
            e.adaptive_wait_events.unwrap() < e.main.astack_wait_events,
            "adaptive sizing must stall less: {:?} vs {}",
            e.adaptive_wait_events,
            e.main.astack_wait_events
        );
        // The attribution taxonomy separates cached handoffs from full
        // context switches.
        let exchange_code = (0..u16::from(u8::MAX))
            .find(|&c| matches!(Phase::from_code(c), Phase::ProcessorExchange))
            .expect("ProcessorExchange has a span code");
        assert_eq!(phase_group(exchange_code), "cached handoff");
        assert_eq!(
            phase_group(
                (0..u16::from(u8::MAX))
                    .find(|&c| matches!(Phase::from_code(c), Phase::ContextSwitch))
                    .expect("ContextSwitch has a span code")
            ),
            "trap+crossing"
        );
        // Same spec, same experiment, bit for bit.
        let f = run_experiment(&tiny_mp());
        assert_eq!(virt_digest(&e.main), virt_digest(&f.main));
        assert_eq!(e.k1_p99, f.k1_p99);
        assert_eq!(e.caching_off_p99, f.caching_off_p99);
        assert_eq!(e.caching_off_serial_mean, f.caching_off_serial_mean);
        assert_eq!(e.adaptive_p99, f.adaptive_p99);
    }

    #[test]
    fn forcing_caching_off_trips_the_delta_gate() {
        let mut spec = tiny_mp();
        spec.domain_caching = false;
        spec.adaptive = false;
        let e = run_experiment(&spec);
        assert!(
            e.gate_failures()
                .iter()
                .any(|f| f.contains("domain caching")),
            "with caching forced off the A/B legs are identical and the \
             positive-delta gate must trip: {:?}",
            e.gate_failures()
        );
    }
}
