//! Site-scale open-loop tail-latency benchmark with per-phase p99
//! attribution.
//!
//! `workload::site` emits the plan — hundreds of interfaces, tens of
//! thousands of bindings, seeded exponential arrivals mixing serial
//! calls, `call_batch` ring flushes, and bulk-arena payloads. This
//! module executes it on a one-CPU C-VAX Firefly and accounts for the
//! tail three ways:
//!
//! * **Per-mix quantiles.** Every call's *open-loop* virtual latency
//!   (completion − scheduled arrival, so backlog queueing counts) lands
//!   in an HDR [`obs::TailHistogram`] per workload mix; host wall time
//!   is recorded alongside but never gated — the host runs a simulator.
//! * **A windowed time-series** over virtual completion time, so a burst
//!   that queues behind a batch or a bulk copy shows up in *its* window's
//!   p99 instead of being averaged away.
//! * **Tail attribution.** Calls strictly above the overall virtual p99
//!   are joined with their flight-recorder spans (every charge site
//!   emits one, even on unmetered calls) and decomposed into phase
//!   groups — open-loop queue wait, trap/crossing, stubs, copies,
//!   A-/E-stack waits, ring descriptor ops, dispatch — whose shares sum
//!   to 100 % of the accounted virtual time by construction. The flight
//!   ring's dropped counter turns silent sampling into a reported
//!   *coverage* number.
//!
//! Determinism contract: everything under the `virtual` key of the
//! persisted entry is a pure function of the [`TailSpec`] — same spec,
//! byte-identical stats — which is what lets `BENCH_tail.json` gate p99
//! across PRs at a tight tolerance.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::fault::{FaultConfig, FaultPlan};
use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::thread::Thread;
use lrpc::{Binding, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
use obs::latency::{TailHistogram, TailSnapshot, WindowedSeries};
use workload::site::{
    generate_site, interface_name, CallKind, SitePlan, SiteSpec, PROC_GET, PROC_PUT, PROC_SEND,
};

use crate::common::flight_lock;

/// Client domains the bindings are spread over (bindings round-robin).
pub const CLIENT_DOMAINS: usize = 8;

/// Relative p99 regression the cross-PR gate tolerates. The virtual
/// stats are deterministic, so any slack only absorbs *intentional*
/// cost-model drift, not noise.
pub const P99_TOLERANCE: f64 = 0.05;

/// Minimum share of above-p99 calls whose spans survived in the flight
/// ring. Check-sized runs size the ring to hold everything, so this only
/// trips if the ring was created too small (or shrunk by another user).
pub const MIN_SPAN_COVERAGE: f64 = 0.95;

/// Flight-ring capacity ceiling, spans (~40 B each).
const MAX_FLIGHT_CAPACITY: usize = 2_000_000;

/// Spans a single call can emit, with headroom.
const SPANS_PER_CALL: usize = 24;

/// What one tail run executes: the site plan spec plus the injected
/// regression knob used to prove the gate trips.
#[derive(Clone, Debug, PartialEq)]
pub struct TailSpec {
    pub site: SiteSpec,
    /// When nonzero, every dispatch is delayed this many virtual µs via
    /// the fault plane — the "known regression" the gate must catch.
    /// Runs with a nonzero knob are never persisted.
    pub dispatch_delay_us: u64,
}

impl TailSpec {
    pub fn full() -> TailSpec {
        TailSpec {
            site: SiteSpec::full(),
            dispatch_delay_us: 0,
        }
    }

    pub fn ci() -> TailSpec {
        TailSpec {
            site: SiteSpec::ci(),
            dispatch_delay_us: 0,
        }
    }
}

/// The workload mixes stats are reported for.
pub const MIXES: [&str; 4] = ["all", "serial", "batch", "bulk"];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mix {
    Serial,
    Batch,
    Bulk,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Serial => "serial",
            Mix::Batch => "batch",
            Mix::Bulk => "bulk",
        }
    }
}

/// Quantile summary of one mix, virtual or host ns.
#[derive(Clone, Debug, PartialEq)]
pub struct MixStats {
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    pub mean: f64,
}

impl MixStats {
    fn from_snapshot(s: &TailSnapshot) -> MixStats {
        MixStats {
            count: s.count,
            p50: s.quantile(0.50).unwrap_or(0),
            p90: s.quantile(0.90).unwrap_or(0),
            p99: s.quantile(0.99).unwrap_or(0),
            p999: s.quantile(0.999).unwrap_or(0),
            max: s.max,
            mean: s.mean(),
        }
    }
}

/// One window of the virtual-time latency series.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRow {
    pub start_ns: u64,
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// One phase group's share of the above-p99 virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseShare {
    pub group: &'static str,
    pub ns: u64,
    pub share: f64,
}

/// Everything one tail run measured.
#[derive(Clone, Debug)]
pub struct TailReport {
    pub spec: TailSpec,
    /// Individual calls executed (batch arrivals expanded).
    pub calls: u64,
    /// Calls that returned an error (none expected on the clean plan).
    pub errors: u64,
    /// Virtual-latency stats per mix, keyed in [`MIXES`] order.
    pub virt: Vec<(&'static str, MixStats)>,
    /// Host wall-clock stats per mix (informational, not gated).
    pub host: Vec<(&'static str, MixStats)>,
    /// Virtual-time latency series, window width `spec.site.window_ns`.
    pub windows: Vec<WindowRow>,
    /// Above-p99 phase decomposition, descending by time.
    pub attribution: Vec<PhaseShare>,
    /// Calls strictly above the overall virtual p99.
    pub tail_calls: u64,
    /// Tail calls whose flight spans survived to be joined.
    pub accounted_tail_calls: u64,
    /// `accounted / tail_calls` (1.0 when the tail is empty).
    pub span_coverage: f64,
    /// Flight spans overwritten unread during this run (process-wide
    /// delta of `obs_flight_dropped_total`).
    pub dropped_spans: u64,
    /// Virtual clock at the end of the run.
    pub total_virtual_ns: u64,
    /// Host wall time of the measured loop.
    pub host_wall_ms: f64,
}

/// Maps a flight-span phase code onto an attribution group. The groups
/// follow the ISSUE's taxonomy: crossing (trap/transfer/switch/exchange),
/// stubs, copies, resource waits (A-stack/E-stack), ring descriptor ops,
/// dispatch+validation, the server procedure itself, and a residue.
fn phase_group(code: u16) -> &'static str {
    use Phase::*;
    match Phase::from_code(code) {
        Trap | KernelTransfer | ContextSwitch | ProcessorExchange => "trap+crossing",
        ClientStub | ServerStub | ProcedureCall | Marshal => "stub",
        ArgCopy | MessageTransfer | BufferManagement | OobSegment => "copy",
        Wait => "astack/estack wait",
        QueueOp => "ring descriptor ops",
        Dispatch | Scheduling | Validation => "dispatch+validate",
        ServerProcedure => "server procedure",
        Network | Other => "other",
    }
}

/// The synthetic group for open-loop backlog (arrival happened while the
/// CPU was still serving earlier traffic); not a flight span.
const QUEUE_WAIT_GROUP: &str = "open-loop queue wait";

struct SiteEnv {
    rt: Arc<LrpcRuntime>,
    threads: Vec<Arc<Thread>>,
    bindings: Vec<Binding>,
}

fn handlers(bulk: bool) -> Vec<Handler> {
    let mut v: Vec<Handler> = vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(a.wrapping_add(*b))))
        }),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(*h)))
        }),
    ];
    if bulk {
        v.push(Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(data) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(data.len() as i32)))
        }));
    }
    v
}

fn build_env(plan: &SitePlan, dispatch_delay_us: u64) -> SiteEnv {
    let rt = LrpcRuntime::with_config(
        Kernel::new(Machine::new(1, CostModel::cvax_firefly())),
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    if dispatch_delay_us > 0 {
        rt.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            dispatch_delay_us,
            ..FaultConfig::default()
        })));
    }
    for (i, idl) in plan.idls.iter().enumerate() {
        let server = rt.kernel().create_domain(format!("site-srv-{i:03}"));
        rt.export(&server, idl, handlers(plan.bulk_flavored[i]))
            .expect("site interface exports");
    }
    let clients: Vec<_> = (0..CLIENT_DOMAINS)
        .map(|i| rt.kernel().create_domain(format!("site-client-{i}")))
        .collect();
    let threads: Vec<Arc<Thread>> = clients
        .iter()
        .map(|c| rt.kernel().spawn_thread(c))
        .collect();
    let bindings: Vec<Binding> = (0..plan.spec.bindings)
        .map(|b| {
            let iface = plan.binding_interface(b);
            rt.import(&clients[b % CLIENT_DOMAINS], &interface_name(iface))
                .expect("site binding imports")
        })
        .collect();
    SiteEnv {
        rt,
        threads,
        bindings,
    }
}

struct CallRec {
    trace: u64,
    mix: Mix,
    latency_ns: u64,
    queue_wait_ns: u64,
    completion_ns: u64,
    wall_ns: u64,
}

/// Runs the plan. Holds the process-wide flight lock for the whole
/// toggle-run-snapshot window; the traffic executes on a fresh worker
/// thread so its flight ring is created at the requested capacity even
/// if this thread recorded (with a smaller ring) earlier in the process.
pub fn run(spec: &TailSpec) -> TailReport {
    let plan = generate_site(&spec.site);
    let env = build_env(&plan, spec.dispatch_delay_us);

    let _flight = flight_lock();
    let capacity = (plan.total_calls() * SPANS_PER_CALL).clamp(4096, MAX_FLIGHT_CAPACITY);
    obs::flight::enable_with_capacity(capacity);
    let dropped_before = obs::flight::dropped_total();

    let wall_start = Instant::now();
    let (records, errors) = std::thread::scope(|s| {
        s.spawn(|| execute(&plan, &env))
            .join()
            .expect("tail worker")
    });
    let host_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    obs::flight::disable();
    let dropped_spans = obs::flight::dropped_total() - dropped_before;
    let total_virtual_ns = env.rt.kernel().machine().cpu(0).now().as_nanos();

    // Per-mix quantiles, virtual and host.
    let virt_all = TailHistogram::new();
    let host_all = TailHistogram::new();
    let mut virt_mix: BTreeMap<&'static str, TailHistogram> = BTreeMap::new();
    let mut host_mix: BTreeMap<&'static str, TailHistogram> = BTreeMap::new();
    let mut windows = WindowedSeries::new(spec.site.window_ns);
    for r in &records {
        virt_all.observe(r.latency_ns);
        host_all.observe(r.wall_ns);
        virt_mix
            .entry(r.mix.name())
            .or_default()
            .observe(r.latency_ns);
        host_mix.entry(r.mix.name()).or_default().observe(r.wall_ns);
        windows.observe(r.completion_ns, r.latency_ns);
    }
    let stats_for = |map: &BTreeMap<&'static str, TailHistogram>,
                     all: &TailHistogram|
     -> Vec<(&'static str, MixStats)> {
        MIXES
            .iter()
            .map(|&m| {
                let snap = if m == "all" {
                    all.snapshot()
                } else {
                    map.get(m).map(|h| h.snapshot()).unwrap_or_default()
                };
                (m, MixStats::from_snapshot(&snap))
            })
            .collect()
    };
    let virt = stats_for(&virt_mix, &virt_all);
    let host = stats_for(&host_mix, &host_all);

    let window_rows: Vec<WindowRow> = windows
        .snapshot()
        .into_iter()
        .map(|(start_ns, s)| WindowRow {
            start_ns,
            count: s.count,
            p50: s.quantile(0.50).unwrap_or(0),
            p99: s.quantile(0.99).unwrap_or(0),
            max: s.max,
        })
        .collect();

    // Tail attribution: join calls strictly above the overall virtual
    // p99 with their flight spans.
    let p99_all = virt_all.snapshot().quantile(0.99).unwrap_or(0);
    let tail_recs: Vec<&CallRec> = records.iter().filter(|r| r.latency_ns > p99_all).collect();
    let tail_traces: HashSet<u64> = tail_recs.iter().map(|r| r.trace).collect();
    let mut spans_by_trace: BTreeMap<u64, Vec<(u16, u64)>> = BTreeMap::new();
    for span in obs::flight::snapshot() {
        let raw = span.trace.raw();
        if tail_traces.contains(&raw) {
            spans_by_trace
                .entry(raw)
                .or_default()
                .push((span.phase, span.dur_ns));
        }
    }
    let mut group_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut accounted = 0u64;
    let mut accounted_ns = 0u64;
    for r in &tail_recs {
        let Some(spans) = spans_by_trace.get(&r.trace) else {
            continue; // spans overwritten; reported via coverage
        };
        accounted += 1;
        *group_ns.entry(QUEUE_WAIT_GROUP).or_insert(0) += r.queue_wait_ns;
        accounted_ns += r.queue_wait_ns;
        for &(code, dur) in spans {
            *group_ns.entry(phase_group(code)).or_insert(0) += dur;
            accounted_ns += dur;
        }
    }
    let mut attribution: Vec<PhaseShare> = group_ns
        .into_iter()
        .map(|(group, ns)| PhaseShare {
            group,
            ns,
            share: if accounted_ns > 0 {
                ns as f64 / accounted_ns as f64
            } else {
                0.0
            },
        })
        .collect();
    attribution.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.group.cmp(b.group)));
    let tail_calls = tail_recs.len() as u64;
    let span_coverage = if tail_calls == 0 {
        1.0
    } else {
        accounted as f64 / tail_calls as f64
    };

    TailReport {
        spec: spec.clone(),
        calls: records.len() as u64,
        errors,
        virt,
        host,
        windows: window_rows,
        attribution,
        tail_calls,
        accounted_tail_calls: accounted,
        span_coverage,
        dropped_spans,
        total_virtual_ns,
        host_wall_ms,
    }
}

/// The measured loop: replays the arrival schedule open-loop over the
/// one simulated CPU. Runs on its own thread (fresh flight ring).
fn execute(plan: &SitePlan, env: &SiteEnv) -> (Vec<CallRec>, u64) {
    let cpu = env.rt.kernel().machine().cpu(0);
    let put_name = vec![0u8; 16];
    let mut records = Vec::with_capacity(plan.total_calls());
    let mut errors = 0u64;
    for arrival in &plan.arrivals {
        let at = Nanos::from_nanos(arrival.at_ns);
        // Open loop: an idle CPU sleeps until the scheduled arrival; a
        // busy one is already past it and the backlog becomes queue wait
        // inside the measured latency.
        cpu.advance_to(at);
        let queue_wait_ns = (cpu.now() - at).as_nanos();
        let binding = &env.bindings[arrival.binding];
        let thread = &env.threads[arrival.binding % CLIENT_DOMAINS];
        let wall = Instant::now();
        match arrival.kind {
            CallKind::Serial { proc } => {
                let args: Vec<Value> = match proc {
                    PROC_GET => vec![Value::Int32(1), Value::Int32(2)],
                    PROC_PUT => vec![Value::Int32(1), Value::Bytes(put_name.clone())],
                    _ => unreachable!("serial mix only draws Get/Put"),
                };
                match binding.call_unmetered(0, thread, proc, &args) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("serial proc={proc} err={e:?}");
                        errors += 1;
                    }
                    Ok(out) => records.push(CallRec {
                        trace: out.trace.raw(),
                        mix: Mix::Serial,
                        latency_ns: (cpu.now() - at).as_nanos(),
                        queue_wait_ns,
                        completion_ns: cpu.now().as_nanos(),
                        wall_ns: wall.elapsed().as_nanos() as u64,
                    }),
                    Err(_) => errors += 1,
                }
            }
            CallKind::Bulk { bytes } => {
                let args = vec![Value::Var(vec![0xA5; bytes as usize])];
                match binding.call_unmetered(0, thread, PROC_SEND, &args) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("bulk bytes={} err={e:?}", args.len());
                        errors += 1;
                    }
                    Ok(out) => records.push(CallRec {
                        trace: out.trace.raw(),
                        mix: Mix::Bulk,
                        latency_ns: (cpu.now() - at).as_nanos(),
                        queue_wait_ns,
                        completion_ns: cpu.now().as_nanos(),
                        wall_ns: wall.elapsed().as_nanos() as u64,
                    }),
                    Err(_) => errors += 1,
                }
            }
            CallKind::Batch { calls } => {
                let requests: Vec<(usize, Vec<Value>)> = (0..calls)
                    .map(|i| (PROC_GET, vec![Value::Int32(i as i32), Value::Int32(2)]))
                    .collect();
                match binding.call_batch(0, thread, requests) {
                    Err(e) if std::env::var("TAIL_DEBUG").is_ok() => {
                        eprintln!("batch calls={calls} err={e:?}");
                        errors += calls as u64;
                    }
                    Ok(out) => {
                        // Every batched call completes at the reap; its
                        // open-loop latency runs from the shared arrival.
                        let completion_ns = cpu.now().as_nanos();
                        let latency_ns = (cpu.now() - at).as_nanos();
                        let wall_each = wall.elapsed().as_nanos() as u64 / calls.max(1) as u64;
                        for res in &out.results {
                            match res {
                                Ok(o) => records.push(CallRec {
                                    trace: o.trace.raw(),
                                    mix: Mix::Batch,
                                    latency_ns,
                                    queue_wait_ns,
                                    completion_ns,
                                    wall_ns: wall_each,
                                }),
                                Err(_) => errors += 1,
                            }
                        }
                    }
                    Err(_) => errors += calls as u64,
                }
            }
        }
    }
    (records, errors)
}

impl TailReport {
    fn virt_stats(&self, mix: &str) -> &MixStats {
        &self
            .virt
            .iter()
            .find(|(m, _)| *m == mix)
            .expect("MIXES covers every mix")
            .1
    }

    /// The overall virtual p99 — the number the cross-PR gate pins.
    pub fn p99_all(&self) -> u64 {
        self.virt_stats("all").p99
    }

    /// Run-local gate violations (quantile ordering, attribution
    /// closure, span coverage, clean execution).
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.errors > 0 {
            problems.push(format!("{} calls failed on a clean plan", self.errors));
        }
        for (mix, s) in self.virt.iter().chain(self.host.iter()) {
            if s.count == 0 {
                continue;
            }
            if !(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max) {
                problems.push(format!(
                    "{mix}: quantiles not monotone (p50={} p90={} p99={} p999={} max={})",
                    s.p50, s.p90, s.p99, s.p999, s.max
                ));
            }
        }
        if self.accounted_tail_calls > 0 {
            let total: f64 = self.attribution.iter().map(|p| p.share).sum();
            if (total - 1.0).abs() > 1e-6 {
                problems.push(format!(
                    "attribution shares sum to {total}, not 100% of accounted time"
                ));
            }
        }
        if self.span_coverage < MIN_SPAN_COVERAGE {
            problems.push(format!(
                "span coverage {:.3} below {MIN_SPAN_COVERAGE} ({} of {} tail calls joined, \
                 {} spans dropped)",
                self.span_coverage, self.accounted_tail_calls, self.tail_calls, self.dropped_spans
            ));
        }
        problems
    }

    /// The cross-PR gate: overall virtual p99 must not regress more than
    /// [`P99_TOLERANCE`] over the previous persisted run with identical
    /// parameters.
    pub fn regression_failures(&self, prev_p99_all: Option<u64>) -> Vec<String> {
        let mut problems = Vec::new();
        if let Some(prev) = prev_p99_all {
            let limit = prev as f64 * (1.0 + P99_TOLERANCE);
            if self.p99_all() as f64 > limit {
                problems.push(format!(
                    "virtual p99 regressed: {} ns vs previous {} ns (limit {:.0})",
                    self.p99_all(),
                    prev,
                    limit
                ));
            }
        }
        problems
    }

    pub fn passes(&self, prev_p99_all: Option<u64>) -> bool {
        self.gate_failures().is_empty() && self.regression_failures(prev_p99_all).is_empty()
    }
}

/// Renders the report.
pub fn render(r: &TailReport) -> String {
    let mut out = format!(
        "Site tail latency: {} calls over {} arrivals, {:.1} virtual s, {:.0} host ms\n\
         ({} interfaces, {} bindings, mean gap {} ns, seed {}{})\n\n",
        r.calls,
        r.spec.site.arrivals,
        r.total_virtual_ns as f64 / 1e9,
        r.host_wall_ms,
        r.spec.site.interfaces,
        r.spec.site.bindings,
        r.spec.site.mean_interarrival_ns,
        r.spec.site.seed,
        if r.spec.dispatch_delay_us > 0 {
            format!(", FAULT dispatch +{}us", r.spec.dispatch_delay_us)
        } else {
            String::new()
        }
    );
    let quant_rows = |stats: &[(&'static str, MixStats)]| -> Vec<Vec<String>> {
        stats
            .iter()
            .map(|(m, s)| {
                vec![
                    m.to_string(),
                    s.count.to_string(),
                    s.p50.to_string(),
                    s.p90.to_string(),
                    s.p99.to_string(),
                    s.p999.to_string(),
                    s.max.to_string(),
                    format!("{:.0}", s.mean),
                ]
            })
            .collect()
    };
    out.push_str("Virtual ns (open-loop: queueing included; gated):\n");
    out.push_str(&crate::common::format_table(
        &["mix", "count", "p50", "p90", "p99", "p999", "max", "mean"],
        &quant_rows(&r.virt),
    ));
    out.push_str("\nHost ns (simulator wall time; informational):\n");
    out.push_str(&crate::common::format_table(
        &["mix", "count", "p50", "p90", "p99", "p999", "max", "mean"],
        &quant_rows(&r.host),
    ));

    // The worst windows localize tail spikes in time.
    let mut worst: Vec<&WindowRow> = r.windows.iter().collect();
    worst.sort_by(|a, b| b.p99.cmp(&a.p99).then(a.start_ns.cmp(&b.start_ns)));
    out.push_str(&format!(
        "\nWorst windows by p99 ({} windows of {} ms):\n",
        r.windows.len(),
        r.spec.site.window_ns / 1_000_000
    ));
    let rows: Vec<Vec<String>> = worst
        .iter()
        .take(5)
        .map(|w| {
            vec![
                format!("{:.2}s", w.start_ns as f64 / 1e9),
                w.count.to_string(),
                w.p50.to_string(),
                w.p99.to_string(),
                w.max.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::common::format_table(
        &["window", "count", "p50", "p99", "max"],
        &rows,
    ));

    out.push_str(&format!(
        "\nAbove-p99 attribution ({} tail calls, {} joined, coverage {:.1}%, \
         {} spans dropped):\n",
        r.tail_calls,
        r.accounted_tail_calls,
        r.span_coverage * 100.0,
        r.dropped_spans
    ));
    let rows: Vec<Vec<String>> = r
        .attribution
        .iter()
        .map(|p| {
            vec![
                p.group.to_string(),
                p.ns.to_string(),
                format!("{:.1}%", p.share * 100.0),
            ]
        })
        .collect();
    out.push_str(&crate::common::format_table(
        &["phase", "ns", "share"],
        &rows,
    ));
    for f in r.gate_failures() {
        out.push_str(&format!("GATE: {f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dispatch_delay_us: u64) -> TailSpec {
        TailSpec {
            site: SiteSpec {
                seed: 11,
                interfaces: 8,
                bindings: 64,
                arrivals: 400,
                mean_interarrival_ns: 300_000,
                batch_share: 0.10,
                bulk_share: 0.15,
                batch_size: 4,
                window_ns: 10_000_000,
            },
            dispatch_delay_us,
        }
    }

    fn virt_digest(r: &TailReport) -> String {
        // Everything deterministic: virtual quantiles, windows,
        // attribution. (Host stats and wall time excluded.)
        format!("{:?}|{:?}|{:?}", r.virt, r.windows, r.attribution)
    }

    #[test]
    fn run_is_deterministic_and_passes_gates() {
        let a = run(&tiny(0));
        assert!(
            a.gate_failures().is_empty(),
            "gates failed: {:?}",
            a.gate_failures()
        );
        assert_eq!(a.errors, 0);
        assert!(a.calls as usize >= tiny(0).site.arrivals);
        assert!(a.tail_calls > 0, "an open-loop run must have a tail");
        assert!(
            (a.span_coverage - 1.0).abs() < f64::EPSILON,
            "ring sized for the whole run joins every tail call"
        );
        // Attribution must include real phase groups, not just queue wait.
        assert!(a.attribution.iter().any(|p| p.group == "stub"));
        let b = run(&tiny(0));
        assert_eq!(virt_digest(&a), virt_digest(&b), "same spec, same stats");
    }

    #[test]
    fn injected_dispatch_delay_trips_the_p99_gate() {
        let clean = run(&tiny(0));
        let faulted = run(&tiny(500));
        assert!(
            faulted.p99_all() > clean.p99_all(),
            "a 500us dispatch delay must inflate p99 ({} vs {})",
            faulted.p99_all(),
            clean.p99_all()
        );
        assert!(clean.regression_failures(Some(clean.p99_all())).is_empty());
        assert!(
            !faulted
                .regression_failures(Some(clean.p99_all()))
                .is_empty(),
            "the gate must catch the injected regression"
        );
    }
}
