//! The host-parallel Figure-2 experiment: real OS threads driving the
//! real call path.
//!
//! Where [`crate::experiments::figure2`] *models* multiprocessor
//! contention analytically, this experiment runs it: K host threads, each
//! pinned to its own simulated CPU, hammer Null calls through one server
//! domain with domain caching disabled (the Figure-2 configuration —
//! "each call required a context switch"). Every thread exercises the
//! full concurrent machinery for real: lock-free A-stack pop/push, the
//! sharded Binding Object table, per-pair linkage slots and the per-server
//! E-stack pool.
//!
//! **Measurement methodology.** Throughput and speedup are measured in
//! *virtual* time: each simulated CPU carries its own virtual clock,
//! advanced only by the work executed on it, so `total_calls /
//! max(cpu_elapsed)` is the simulated machine's aggregate call rate —
//! independent of how many *host* cores the test machine happens to have.
//! (A single-core host interleaves the K threads, but interleaving cannot
//! advance a virtual clock it isn't running on, so the virtual numbers are
//! stable.) Wall-clock nanoseconds per call are recorded alongside as an
//! honesty check on real host-side scaling; on a single-core host they
//! measure lock overhead, not parallel speedup, and the persisted
//! trajectory documents both.

use std::sync::Arc;
use std::time::Instant;

use firefly::time::Nanos;

use crate::common::LrpcEnv;

/// One thread-count point of the host-parallel experiment.
#[derive(Clone, Debug)]
pub struct HostParallelPoint {
    /// Number of concurrently calling host threads (= simulated CPUs).
    pub threads: usize,
    /// Total Null calls completed across all threads.
    pub total_calls: u64,
    /// Aggregate virtual-time throughput, calls per simulated second.
    pub calls_per_sec: f64,
    /// Per-call virtual latency on the busiest CPU.
    pub virtual_ns_per_call: f64,
    /// Per-call wall-clock time across the whole run (all threads).
    pub wall_ns_per_call: f64,
}

/// The full thread-count sweep.
#[derive(Clone, Debug)]
pub struct HostParallelReport {
    /// Calls each thread performs at every point.
    pub calls_per_thread: usize,
    /// One point per thread count, 1..=max.
    pub points: Vec<HostParallelPoint>,
    /// Virtual-time throughput at the highest thread count relative to one
    /// thread (the paper's Figure-2 headline is 3.7 at four CPUs).
    pub speedup_at_max: f64,
}

/// Runs one point: `threads` host threads × `calls_per_thread` Null calls,
/// one simulated CPU per thread, one shared server domain.
pub fn run_point(threads: usize, calls_per_thread: usize) -> HostParallelPoint {
    assert!(threads >= 1, "need at least one calling thread");
    let env = Arc::new(LrpcEnv::new(threads, false));
    let machine = Arc::clone(env.rt.kernel().machine());

    let virtual_start: Vec<Nanos> = (0..threads).map(|c| machine.cpu(c).now()).collect();
    let wall_start = Instant::now();
    std::thread::scope(|s| {
        for cpu in 0..threads {
            let env = Arc::clone(&env);
            s.spawn(move || {
                let thread = env.rt.kernel().spawn_thread(&env.client);
                for _ in 0..calls_per_thread {
                    env.binding
                        .call_unmetered(cpu, &thread, 0, &[])
                        .expect("host-parallel Null call");
                }
            });
        }
    });
    let wall = wall_start.elapsed();

    let busiest_ns = (0..threads)
        .map(|c| {
            machine
                .cpu(c)
                .now()
                .saturating_sub(virtual_start[c])
                .as_nanos()
        })
        .max()
        .unwrap_or(0)
        .max(1);
    let total_calls = (threads * calls_per_thread) as u64;
    HostParallelPoint {
        threads,
        total_calls,
        calls_per_sec: total_calls as f64 * 1e9 / busiest_ns as f64,
        virtual_ns_per_call: busiest_ns as f64 / calls_per_thread as f64,
        wall_ns_per_call: wall.as_nanos() as f64 / total_calls as f64,
    }
}

/// Sweeps 1..=`max_threads` and derives the speedup at the top point.
pub fn run_null_throughput(max_threads: usize, calls_per_thread: usize) -> HostParallelReport {
    assert!(max_threads >= 1, "need at least one thread count");
    let points: Vec<HostParallelPoint> = (1..=max_threads)
        .map(|k| run_point(k, calls_per_thread))
        .collect();
    let speedup_at_max = points[points.len() - 1].calls_per_sec / points[0].calls_per_sec;
    HostParallelReport {
        calls_per_thread,
        points,
        speedup_at_max,
    }
}

/// Renders the sweep as an aligned text table.
pub fn render(report: &HostParallelReport) -> String {
    let body: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.total_calls.to_string(),
                format!("{:.0}", p.calls_per_sec),
                format!("{:.0}", p.virtual_ns_per_call),
                format!("{:.0}", p.wall_ns_per_call),
            ]
        })
        .collect();
    format!(
        "Host-parallel Figure 2 ({} Null calls/thread, domain caching off)\n{}\n\
         speedup at {} threads: {:.2} (virtual time; paper reports 3.7 at 4 CPUs)\n",
        report.calls_per_thread,
        crate::common::format_table(
            &[
                "threads",
                "calls",
                "calls/s (virtual)",
                "ns/call (virtual)",
                "ns/call (wall)"
            ],
            &body
        ),
        report.points[report.points.len() - 1].threads,
        report.speedup_at_max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_point_is_sane() {
        let p = run_point(1, 25);
        assert_eq!(p.threads, 1);
        assert_eq!(p.total_calls, 25);
        assert!(p.calls_per_sec > 0.0);
        assert!(p.virtual_ns_per_call > 0.0);
    }

    /// The acceptance gate: with lock-free A-stack queues, sharded handle
    /// shards and per-binding state, four concurrent callers must reach at
    /// least 3× the single-caller virtual-time throughput (the paper's
    /// Figure 2 shows 3.7 on real hardware; a shared lock anywhere on the
    /// Null path would flatten this toward 1×).
    #[test]
    fn four_threads_scale_at_least_3x() {
        let report = run_null_throughput(4, 60);
        assert_eq!(report.points.len(), 4);
        assert!(
            report.speedup_at_max >= 3.0,
            "expected >= 3.0x at 4 threads, measured {:.2}x",
            report.speedup_at_max
        );
    }

    /// Throughput must grow monotonically with the thread count — any
    /// inversion means threads are serializing on something.
    #[test]
    fn throughput_is_monotonic_in_threads() {
        let report = run_null_throughput(3, 40);
        for pair in report.points.windows(2) {
            assert!(
                pair[1].calls_per_sec > pair[0].calls_per_sec,
                "throughput fell from {:.0} ({} threads) to {:.0} ({} threads)",
                pair[0].calls_per_sec,
                pair[0].threads,
                pair[1].calls_per_sec,
                pair[1].threads
            );
        }
    }
}
