//! Criterion bench: the ablation experiments and the workload generators
//! (Tables 1, Figure 1, Section 2.2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bench::ablations;
use workload::{ActivityModel, PopularityModel, SizeDistribution};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);
    group.bench_function("domain_caching", |b| {
        b.iter(|| black_box(ablations::domain_caching().saving_us))
    });
    group.bench_function("tagged_tlb", |b| {
        b.iter(|| black_box(ablations::tagged_tlb().saving_us))
    });
    group.bench_function("noninterpreted_copy", |b| {
        b.iter(|| black_box(ablations::noninterpreted_copy().interpreted_us))
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generators");
    const N: usize = 100_000;
    group.throughput(Throughput::Elements(N as u64));

    let taos = ActivityModel::taos();
    group.bench_function("activity_sample", |b| {
        b.iter(|| black_box(taos.sample(1, N)))
    });

    let sizes = SizeDistribution::figure_1();
    group.bench_function("size_sample", |b| b.iter(|| black_box(sizes.sample(1, N))));

    let pop = PopularityModel::section_2_2();
    group.bench_function("popularity_sample", |b| {
        b.iter(|| black_box(pop.sample(1, N)))
    });

    group.bench_function("corpus_generate_and_measure", |b| {
        b.iter(|| {
            let corpus = workload::generate_corpus();
            black_box(workload::measure(&corpus))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations, bench_workloads);
criterion_main!(benches);
