//! Criterion bench: the Null cross-domain call (Tables 2, 4, 5).
//!
//! Two things are measured for every transport:
//!
//! * *virtual* latency (the calibrated simulated time, matching the
//!   paper's microseconds) is asserted once at startup — this is the
//!   number the paper comparison rests on, and
//! * *wall-clock* cost of executing one call through the simulator, which
//!   is what Criterion reports. Note that wall-clock time measures the
//!   simulation itself (the LRPC path performs more simulated-hardware
//!   work — protection checks, TLB touches — than the coarser message
//!   model), so it is a regression guard for this codebase, not a
//!   reproduction of the paper's ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::common::{LrpcEnv, MsgEnv};
use msgrpc::MsgRpcCost;

fn bench_null(c: &mut Criterion) {
    let mut group = c.benchmark_group("null_call");
    group.sample_size(60);

    // Serial LRPC.
    let lrpc = LrpcEnv::new(1, false);
    let virt = lrpc.steady_latency("Null", &[]);
    assert_eq!(
        virt.as_micros_f64().round() as u64,
        157,
        "calibration drifted"
    );
    group.bench_function("lrpc_serial", |b| {
        b.iter(|| {
            let out = lrpc
                .binding
                .call_unmetered(0, &lrpc.thread, 0, &[])
                .expect("call");
            black_box(out.elapsed)
        })
    });

    // LRPC with the idle-processor optimization: the CPUs exchange back
    // and forth, so the bench tracks which CPU the thread ended on.
    let mp = LrpcEnv::new(2, true);
    mp.rt
        .kernel()
        .machine()
        .cpu(1)
        .set_idle_in(Some(mp.server.ctx().id()));
    let warm = mp.binding.call(0, &mp.thread, "Null", &[]).expect("warmup");
    assert!(warm.exchanged_on_call);
    let cpu_cell = std::cell::Cell::new(warm.end_cpu);
    group.bench_function("lrpc_mp", |b| {
        b.iter(|| {
            let out = mp
                .binding
                .call_unmetered(cpu_cell.get(), &mp.thread, 0, &[])
                .expect("mp call");
            cpu_cell.set(out.end_cpu);
            black_box(out.elapsed)
        })
    });

    // SRC RPC (Taos), the paper's baseline.
    let src = MsgEnv::new(MsgRpcCost::src_rpc_taos());
    let virt = src.steady_latency("Null", &[]);
    assert_eq!(
        virt.as_micros_f64().round() as u64,
        464,
        "calibration drifted"
    );
    group.bench_function("src_rpc", |b| {
        b.iter(|| {
            let out = src
                .system
                .call_indexed(&src.client, &src.thread, &src.server, 0, 0, &[], false)
                .expect("call");
            black_box(out.elapsed)
        })
    });

    // The full-copy path (Mach-style).
    let mach = MsgEnv::new(MsgRpcCost::mach_cvax());
    group.bench_function("full_copy_msg", |b| {
        b.iter(|| {
            let out = mach
                .system
                .call_indexed(&mach.client, &mach.thread, &mach.server, 0, 0, &[], false)
                .expect("call");
            black_box(out.elapsed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_null);
criterion_main!(benches);
