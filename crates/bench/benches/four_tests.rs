//! Criterion bench: the four Table 4 tests across the three transports
//! (LRPC/MP, serial LRPC, Taos SRC RPC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::common::{four_tests, LrpcEnv, MsgEnv};
use msgrpc::MsgRpcCost;

fn bench_four_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("four_tests");
    group.sample_size(40);

    let serial = LrpcEnv::new(1, false);
    let taos = MsgEnv::new(MsgRpcCost::src_rpc_taos());

    for (idx, (name, args)) in four_tests().into_iter().enumerate() {
        // Assert the virtual latencies once (Table 4).
        let paper_lrpc = [157.0, 164.38, 191.8, 226.6][idx];
        let virt = serial.steady_latency(name, &args).as_micros_f64();
        assert!(
            (virt - paper_lrpc).abs() < 1.0,
            "{name}: {virt} vs {paper_lrpc}"
        );

        group.bench_with_input(BenchmarkId::new("lrpc", name), &args, |b, args| {
            b.iter(|| {
                black_box(
                    serial
                        .binding
                        .call_unmetered(0, &serial.thread, idx, args)
                        .expect("lrpc call")
                        .elapsed,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("taos", name), &args, |b, args| {
            b.iter(|| {
                black_box(
                    taos.system
                        .call_indexed(
                            &taos.client,
                            &taos.thread,
                            &taos.server,
                            0,
                            idx,
                            args,
                            false,
                        )
                        .expect("msg call")
                        .elapsed,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_four_tests);
criterion_main!(benches);
