//! Criterion bench: multiprocessor call throughput (Figure 2).
//!
//! Benchmarks the deterministic contention simulation at 1–4 CPUs (the
//! numbers it produces are checked against the paper in the experiment
//! suite) and, separately, the *real* concurrent behaviour: four host
//! threads calling one server through LRPC versus through the
//! global-locked SRC path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use bench::common::{LrpcEnv, MsgEnv};
use bench::experiments;
use firefly::contention::simulate_throughput;
use firefly::time::Nanos;
use msgrpc::MsgRpcCost;

fn bench_contention_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_simulation");
    group.sample_size(30);
    // The experiment itself (all series, all CPU counts).
    group.bench_function("full_figure2", |b| {
        b.iter(|| black_box(experiments::figure2().speedup_4))
    });
    // One simulated second at 4 CPUs, over the same ResourcePlan layout
    // (shared bus + private per-CPU A-stack queue) the experiment uses.
    let cost = firefly::cost::CostModel::cvax_firefly();
    let (profiles, _bus, resources) = experiments::lrpc_parallel_profiles(&cost, 4);
    group.throughput(Throughput::Elements(1));
    group.bench_function("simulate_1s_4cpu", |b| {
        b.iter(|| {
            black_box(simulate_throughput(&profiles, resources, Nanos::from_secs(1)).total_calls())
        })
    });
    group.finish();
}

fn bench_real_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_concurrency");
    group.sample_size(20);
    const CALLS_PER_THREAD: usize = 200;
    group.throughput(Throughput::Elements((4 * CALLS_PER_THREAD) as u64));

    // Four host threads through LRPC (per-binding A-stack queues only).
    let env = Arc::new(LrpcEnv::new(4, false));
    group.bench_function(BenchmarkId::new("lrpc", "4threads"), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for cpu in 0..4 {
                    let env = Arc::clone(&env);
                    s.spawn(move || {
                        let thread = env.rt.kernel().spawn_thread(&env.client);
                        for _ in 0..CALLS_PER_THREAD {
                            env.binding
                                .call_unmetered(cpu, &thread, 0, &[])
                                .expect("concurrent lrpc");
                        }
                    });
                }
            });
        })
    });

    // Four host threads through the SRC path: the global parking_lot
    // mutex serializes the transfer section for real.
    let src = Arc::new(MsgEnv::new(MsgRpcCost::src_rpc_taos()));
    group.bench_function(BenchmarkId::new("src_rpc", "4threads"), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let src = Arc::clone(&src);
                    s.spawn(move || {
                        let thread = src.system.kernel().spawn_thread(&src.client);
                        for _ in 0..CALLS_PER_THREAD {
                            src.system
                                .call_indexed(&src.client, &thread, &src.server, 0, 0, &[], false)
                                .expect("concurrent src");
                        }
                    });
                }
            });
        })
    });
    group.finish();
}

criterion_group!(benches, bench_contention_sim, bench_real_concurrency);
criterion_main!(benches);
