//! Criterion bench: stub generation and stub execution (Section 3.3).
//!
//! Covers the compile-time pipeline (parse + compile) and the run-time
//! stub VM in both languages — the assembly fast path and the 4×
//! Modula2+ marshaling path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use firefly::cpu::Machine;
use firefly::meter::Meter;
use idl::stubgen::compile;
use idl::stubvm::{LocalFrame, OobStore, StubVm};
use idl::wire::Value;

const BIG_IDL: &str = r#"
    interface FileServer {
        procedure Open(path: in var bytes[256]) -> int32;
        procedure Close(handle: int32);
        [astacks = 8]
        procedure Write(handle: int32, data: in bytes[1024] noninterpreted) -> int32;
        procedure Read(handle: int32, count: int32, data: out bytes[1024]) -> int32;
        procedure Stat(path: var bytes[256]) -> record { size: int32, mtime: int32, mode: int16 };
        procedure Walk(t: tree);
    }
"#;

fn bench_stubgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("stub_generation");
    group.bench_function("parse", |b| {
        b.iter(|| black_box(idl::parse(BIG_IDL).unwrap()))
    });
    let def = idl::parse(BIG_IDL).unwrap();
    group.bench_function("compile", |b| b.iter(|| black_box(compile(&def))));
    group.finish();
}

fn bench_stubvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("stub_execution");
    let machine = Machine::cvax_uniprocessor();

    // Assembly path: 100 fixed bytes.
    let fast = compile(&idl::parse("interface F { procedure P(d: bytes[100]); }").unwrap());
    let fast_proc = &fast.procs[0];
    let fast_args = [Value::Bytes(vec![7; 100])];
    group.bench_function("assembly_push_100B", |b| {
        b.iter(|| {
            let mut meter = Meter::disabled();
            let mut frame = LocalFrame::new(fast_proc.layout.astack_size);
            let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
            vm.client_push_args(fast_proc, &fast_args, &mut frame, &mut OobStore::new())
                .expect("push");
            black_box(frame)
        })
    });

    // Modula2+ path: the same bytes as a gc blob.
    let slow = compile(&idl::parse("interface S { procedure P(d: gc); }").unwrap());
    let slow_proc = &slow.procs[0];
    let slow_args = [Value::Gc(vec![7; 100])];
    group.bench_function("modula2_marshal_100B", |b| {
        b.iter(|| {
            let mut meter = Meter::disabled();
            let mut frame = LocalFrame::new(slow_proc.layout.astack_size);
            let mut oob = OobStore::new();
            let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
            vm.client_push_args(slow_proc, &slow_args, &mut frame, &mut oob)
                .expect("marshal");
            black_box(oob)
        })
    });

    // Full round trip: push, server read, place result, fetch.
    let add = compile(
        &idl::parse("interface A { procedure Add(a: int32, b: int32) -> int32; }").unwrap(),
    );
    let add_proc = &add.procs[0];
    group.bench_function("add_roundtrip", |b| {
        b.iter(|| {
            let mut meter = Meter::disabled();
            let mut frame = LocalFrame::new(add_proc.layout.astack_size);
            let mut oob = OobStore::new();
            let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
            vm.client_push_args(
                add_proc,
                &[Value::Int32(1), Value::Int32(2)],
                &mut frame,
                &mut oob,
            )
            .expect("push");
            let args = vm.server_read_args(add_proc, &frame, &oob).expect("read");
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!()
            };
            vm.server_place_results(
                add_proc,
                Some(&Value::Int32(a + b)),
                &[],
                &mut frame,
                &mut oob,
            )
            .expect("place");
            black_box(
                vm.client_fetch_results(add_proc, &frame, &oob)
                    .expect("fetch"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stubgen, bench_stubvm);
criterion_main!(benches);
