//! Property tests for A-stack allocation, validation and accounting.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use kernel::kernel::Kernel;
use kernel::Domain;
use lrpc::{AStackPolicy, AStackSet};
use proptest::prelude::*;

fn setup() -> (Arc<Kernel>, Arc<Domain>, Arc<Domain>) {
    let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
    let c = k.create_domain("client");
    let s = k.create_domain("server");
    (k, c, s)
}

/// Strategy: per-procedure (astack_size, simultaneous_calls) in realistic
/// ranges.
fn per_proc() -> impl Strategy<Value = Vec<(usize, u32)>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(4usize), Just(12), Just(64), Just(256), Just(1500)],
            1u32..8,
        ),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_is_disjoint_and_covers_every_stack(spec in per_proc()) {
        let (k, c, s) = setup();
        let set = AStackSet::allocate(&k, &c, &s, "p", &spec);
        // Every index resolves, intervals are disjoint, class sizes match.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        for i in 0..set.total_count() {
            let r = set.lookup(i).expect("primary index resolves");
            prop_assert!(!r.overflow);
            prop_assert_eq!(r.size, set.classes()[r.class].size);
            prop_assert!(r.offset + r.size <= set.primary_region().len());
            intervals.push((r.offset, r.offset + r.size));
        }
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "A-stacks overlap: {:?}", w);
        }
        // One class per distinct size.
        let mut sizes: Vec<usize> = spec.iter().map(|(s, _)| *s).collect();
        sizes.sort_unstable();
        sizes.dedup();
        prop_assert_eq!(set.classes().len(), sizes.len());
    }

    #[test]
    fn shared_classes_hold_the_max_count(spec in per_proc()) {
        let (k, c, s) = setup();
        let set = AStackSet::allocate(&k, &c, &s, "p", &spec);
        for class in set.classes() {
            let max_requested = spec
                .iter()
                .filter(|(sz, _)| *sz == class.size)
                .map(|(_, n)| *n as usize)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(class.primary_count, max_requested);
        }
    }

    #[test]
    fn acquire_release_conserves_the_pool(
        spec in per_proc(),
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..60),
    ) {
        let (k, c, s) = setup();
        let set = AStackSet::allocate(&k, &c, &s, "p", &spec);
        let n_classes = set.classes().len();
        let mut held: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        let initial: Vec<usize> = (0..n_classes).map(|c| set.free_count(c)).collect();

        for (sel, acquire) in ops {
            let class = sel as usize % n_classes;
            if acquire {
                if let Ok(idx) = set.acquire(class, AStackPolicy::Fail, &k, &c, &s) {
                    // Never hand out something already held.
                    prop_assert!(!held.iter().flatten().any(|&h| h == idx));
                    held[class].push(idx);
                }
            } else if let Some(idx) = held[class].pop() {
                set.release(idx);
            }
            // Conservation per class.
            for cl in 0..n_classes {
                prop_assert_eq!(set.free_count(cl) + held[cl].len(), initial[cl]);
            }
        }
    }

    #[test]
    fn validation_accepts_only_matching_classes(spec in per_proc(), probe in 0usize..64) {
        let (k, c, s) = setup();
        let set = AStackSet::allocate(&k, &c, &s, "p", &spec);
        for class in 0..set.classes().len() {
            match set.validate(probe, class) {
                Ok(r) => {
                    prop_assert_eq!(r.class, class);
                    prop_assert!(probe < set.total_count());
                }
                Err(_) => {
                    // Either out of range or a different class.
                    let ok = probe >= set.total_count()
                        || set.lookup(probe).map(|r| r.class != class).unwrap_or(true);
                    prop_assert!(ok);
                }
            }
        }
    }

    /// The lock-free free list under real parallelism: however threads
    /// interleave acquire/release, no A-stack index is ever held by two
    /// callers at once (the ABA-versioned CAS can neither duplicate nor
    /// lose a node) and the pool is conserved when the dust settles.
    #[test]
    fn concurrent_acquire_release_never_double_allocates(
        spec in per_proc(),
        threads in 2usize..5,
        rounds in 1usize..40,
    ) {
        let (k, c, s) = setup();
        let set = Arc::new(AStackSet::allocate(&k, &c, &s, "p", &spec));
        let n_classes = set.classes().len();
        let initial: Vec<usize> = (0..n_classes).map(|cl| set.free_count(cl)).collect();
        let in_flight = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let set = Arc::clone(&set);
                let in_flight = Arc::clone(&in_flight);
                let (k, c, s) = (Arc::clone(&k), Arc::clone(&c), Arc::clone(&s));
                scope.spawn(move || {
                    for r in 0..rounds {
                        let class = (t + r) % n_classes;
                        if let Ok(idx) = set.acquire(class, AStackPolicy::Fail, &k, &c, &s) {
                            // `insert` returning false = double allocation.
                            assert!(
                                in_flight.lock().unwrap().insert(idx),
                                "index {idx} handed to two holders at once"
                            );
                            std::thread::yield_now();
                            in_flight.lock().unwrap().remove(&idx);
                            set.release(idx);
                        }
                    }
                });
            }
        });
        for (cl, &expect) in initial.iter().enumerate() {
            prop_assert_eq!(
                set.free_count(cl),
                expect,
                "pool conserved for class {}",
                cl
            );
        }
        prop_assert!(in_flight.lock().unwrap().is_empty());
    }

    #[test]
    fn grown_stacks_validate_on_the_slow_path(spec in per_proc(), grows in 1usize..5) {
        let (k, c, s) = setup();
        let set = AStackSet::allocate(&k, &c, &s, "p", &spec);
        let before = set.total_count();
        for _ in 0..grows {
            let idx = set.grow(0, &k, &c, &s);
            let r = set.validate(idx, 0).expect("grown stack validates");
            prop_assert!(r.overflow, "grown stacks are non-contiguous");
            prop_assert!(set.linkage(idx).is_some(), "every A-stack has a linkage slot");
        }
        prop_assert_eq!(set.total_count(), before + grows);
    }
}
