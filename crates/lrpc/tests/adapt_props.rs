//! Property tests for the adaptive A-stack sizing controller.
//!
//! The controller is specified as a *pure, monotone, bounded* function of
//! one run's observations (`lrpc::adapt`): the same snapshot always
//! produces the same recommendation (replay depends on this — every
//! application is a recorded decision), more observed pressure never
//! shrinks the recommendation, and the result always respects the
//! configured floor and ceiling no matter how absurd the observations.

use lrpc::adapt::{recommend, recommend_class, recommend_ring};
use lrpc::{AdaptConfig, ClassSnapshot};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = AdaptConfig> {
    (1u32..8, 8u32..128, 4u32..32, 64u32..512, 0u64..2_000_000).prop_map(
        |(min_astacks, max_astacks, min_ring, max_ring, tail_threshold_ns)| AdaptConfig {
            min_astacks,
            max_astacks,
            min_ring_slots: min_ring,
            max_ring_slots: max_ring,
            tail_threshold_ns,
        },
    )
}

fn snapshot() -> impl Strategy<Value = ClassSnapshot> {
    (
        0u64..2_000,
        0u64..2_000,
        0u64..1_000,
        0u64..300,
        0u64..5_000_000,
    )
        .prop_map(
            |(total, peak_in_use, stall_events, batch_peak, tail_p99_ns)| ClassSnapshot {
                total,
                peak_in_use,
                stall_events,
                batch_peak,
                tail_p99_ns,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever a run observed — saturated pools, absurd stall counts,
    /// huge batches — the recommendation stays inside the configured
    /// bounds on both knobs.
    #[test]
    fn recommendations_stay_inside_the_configured_bounds(
        cfg in config(),
        snap in snapshot(),
    ) {
        let astacks = recommend_class(&cfg, &snap);
        prop_assert!(astacks >= cfg.min_astacks && astacks <= cfg.max_astacks);
        let ring = recommend_ring(&cfg, &snap);
        prop_assert!(ring >= cfg.min_ring_slots && ring <= cfg.max_ring_slots);
    }

    /// Raising any pressure signal — occupancy peak, stall count, batch
    /// peak, observed tail — never shrinks the A-stack recommendation,
    /// and a bigger batch peak never shrinks the ring.
    #[test]
    fn more_pressure_never_shrinks_the_recommendation(
        cfg in config(),
        snap in snapshot(),
        bump in 1u64..500,
    ) {
        let base = recommend_class(&cfg, &snap);
        for grown in [
            ClassSnapshot { peak_in_use: snap.peak_in_use + bump, ..snap },
            ClassSnapshot { stall_events: snap.stall_events + bump, ..snap },
            ClassSnapshot { batch_peak: snap.batch_peak + bump, ..snap },
            ClassSnapshot { tail_p99_ns: snap.tail_p99_ns + bump, ..snap },
        ] {
            let got = recommend_class(&cfg, &grown);
            prop_assert!(
                got >= base,
                "pressure raised {:?} -> {:?} but recommendation fell {} -> {}",
                snap, grown, base, got
            );
        }
        let ring_base = recommend_ring(&cfg, &snap);
        let ring_grown = recommend_ring(&cfg, &ClassSnapshot {
            batch_peak: snap.batch_peak + bump,
            ..snap
        });
        prop_assert!(ring_grown >= ring_base);
    }

    /// The controller is a pure function: a fixed snapshot under a fixed
    /// config always yields the same recommendation. (Replay correctness
    /// leans on this — the recorded ADAPT decisions must be reproducible
    /// from the same observations.)
    #[test]
    fn recommendations_are_deterministic_for_a_fixed_snapshot(
        cfg in config(),
        snap in snapshot(),
    ) {
        let first = recommend(&cfg, &snap);
        for _ in 0..3 {
            prop_assert_eq!(recommend(&cfg, &snap), first);
        }
        prop_assert_eq!(first.astacks, recommend_class(&cfg, &snap));
        prop_assert_eq!(first.ring_slots, recommend_ring(&cfg, &snap));
    }
}
