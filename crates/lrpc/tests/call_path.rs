//! End-to-end tests of the LRPC call path against the paper's numbers.

use std::sync::Arc;

use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::thread::Thread;
use kernel::Domain;
use lrpc::{Binding, CallError, Handler, LrpcRuntime, Reply, ServerCtx, TestRuntime};

/// The Table 4 benchmark interface.
const BENCH_IDL: &str = r#"
    interface Bench {
        procedure Null();
        procedure Add(a: int32, b: int32) -> int32;
        procedure BigIn(data: in bytes[200] noninterpreted);
        procedure BigInOut(data: inout bytes[200] noninterpreted);
    }
"#;

fn bench_handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                return Err(CallError::ServerFault("bad arg types".into()));
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }),
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            // Echo the buffer back through the inout parameter.
            Ok(Reply::none().with_out(0, args[0].clone()))
        }),
    ]
}

struct Env {
    rt: Arc<LrpcRuntime>,
    client: Arc<Domain>,
    server: Arc<Domain>,
    thread: Arc<Thread>,
    binding: Binding,
}

fn setup_with(builder: TestRuntime) -> Env {
    let rt = builder.build();
    let server = rt.kernel().create_domain("bench-server");
    rt.export(&server, BENCH_IDL, bench_handlers())
        .expect("export");
    let client = rt.kernel().create_domain("bench-client");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Bench").expect("import");
    Env {
        rt,
        client,
        server,
        thread,
        binding,
    }
}

fn setup_serial() -> Env {
    setup_with(TestRuntime::new().domain_caching(false))
}

/// Steady-state latency of a call (one warmup, then measure).
fn steady_latency(env: &Env, proc: &str, args: &[Value]) -> Nanos {
    env.binding
        .call(0, &env.thread, proc, args)
        .expect("warmup");
    env.binding
        .call(0, &env.thread, proc, args)
        .expect("measured")
        .elapsed
}

#[test]
fn null_call_takes_157_microseconds() {
    let env = setup_serial();
    assert_eq!(steady_latency(&env, "Null", &[]), Nanos::from_micros(157));
}

#[test]
fn table_4_serial_latencies() {
    let env = setup_serial();
    let add = steady_latency(&env, "Add", &[Value::Int32(2), Value::Int32(3)]);
    let big_in = steady_latency(&env, "BigIn", &[Value::Bytes(vec![7; 200])]);
    let big_in_out = steady_latency(&env, "BigInOut", &[Value::Bytes(vec![7; 200])]);
    assert_eq!(add.as_micros_f64().round() as u64, 164, "Add: {add}");
    assert_eq!(
        big_in.as_micros_f64().round() as u64,
        192,
        "BigIn: {big_in}"
    );
    assert_eq!(
        big_in_out.as_micros_f64().round() as u64,
        227,
        "BigInOut: {big_in_out}"
    );
}

#[test]
fn table_5_breakdown_matches_the_paper() {
    let env = setup_serial();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let outcome = env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let m = &outcome.meter;
    assert_eq!(m.total_for(Phase::ProcedureCall), Nanos::from_micros(7));
    assert_eq!(m.total_for(Phase::Trap), Nanos::from_micros(36));
    assert_eq!(m.total_for(Phase::ContextSwitch), Nanos::from_micros(66));
    let stubs = m.total_for(Phase::ClientStub)
        + m.total_for(Phase::ServerStub)
        + m.total_for(Phase::QueueOp);
    assert_eq!(stubs, Nanos::from_micros(21));
    assert_eq!(m.total_for(Phase::KernelTransfer), Nanos::from_micros(27));
    assert_eq!(m.total(), Nanos::from_micros(157));
}

#[test]
fn null_call_incurs_about_43_tlb_misses() {
    let env = setup_serial();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let outcome = env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    assert_eq!(
        outcome.meter.tlb_misses(),
        43,
        "the paper estimates 43 misses per Null call"
    );
}

#[test]
fn results_and_out_parameters_roundtrip() {
    let env = setup_serial();
    let add = env
        .binding
        .call(0, &env.thread, "Add", &[Value::Int32(19), Value::Int32(23)])
        .unwrap();
    assert_eq!(add.ret, Some(Value::Int32(42)));

    let payload = vec![0xA5u8; 200];
    let echo = env
        .binding
        .call(0, &env.thread, "BigInOut", &[Value::Bytes(payload.clone())])
        .unwrap();
    assert_eq!(echo.outs, vec![(0, Value::Bytes(payload))]);
}

#[test]
fn idle_processor_optimization_cuts_null_to_125_microseconds() {
    let env = setup_with(TestRuntime::new().cpus(2).domain_caching(true));
    // Park CPU 1 idling in the server's context (the scheduler would do
    // this after noticing idle misses).
    env.rt
        .kernel()
        .machine()
        .cpu(1)
        .set_idle_in(Some(env.server.ctx().id()));

    // Warmup (also re-parks the CPUs via the exchange dance).
    let w = env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    assert!(
        w.exchanged_on_call,
        "an idle CPU in the server context must be claimed"
    );
    assert!(
        w.exchanged_on_return,
        "the original CPU idles in the client context"
    );

    let start_cpu = w.end_cpu;
    let outcome = env
        .binding
        .call(start_cpu, &env.thread, "Null", &[])
        .unwrap();
    assert!(outcome.exchanged_on_call && outcome.exchanged_on_return);
    assert_eq!(
        outcome.elapsed,
        Nanos::from_micros(125),
        "Table 4 LRPC/MP Null"
    );
    assert_eq!(outcome.meter.total_for(Phase::ContextSwitch), Nanos::ZERO);
}

#[test]
fn forged_binding_object_is_rejected_by_the_kernel() {
    let env = setup_serial();
    let forged = env.binding.forged();
    let err = forged.call(0, &env.thread, "Null", &[]).unwrap_err();
    assert!(matches!(err, CallError::InvalidBinding(_)), "got {err}");
    // The real binding still works, and the A-stack taken by the failed
    // call was released by the unwind path.
    for _ in 0..10 {
        env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    }
}

#[test]
fn bad_procedure_identifier_is_rejected() {
    let env = setup_serial();
    let err = env
        .binding
        .call_indexed(0, &env.thread, 99, &[])
        .unwrap_err();
    assert!(matches!(err, CallError::BadProcedure { index: 99 }));
}

#[test]
fn server_termination_revokes_binding_and_raises_call_failed() {
    let env = setup_serial();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    env.rt.terminate_domain(&env.server);
    let err = env.binding.call(0, &env.thread, "Null", &[]).unwrap_err();
    // The Binding Object was revoked; depending on timing the kernel sees
    // either the revoked flag or the already-removed handle.
    assert!(
        matches!(
            err,
            CallError::BindingRevoked | CallError::InvalidBinding(_)
        ),
        "got {err}"
    );
    // The interface is gone from the name server too.
    let other = env.rt.kernel().create_domain("late-client");
    let import_err = env
        .rt
        .clone()
        .import(&other, "Bench")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(import_err, CallError::ImportTimeout { .. }));
}

#[test]
fn server_fault_propagates_and_resources_are_released() {
    let rt = TestRuntime::new().build();
    let server = rt.kernel().create_domain("faulty");
    rt.export(
        &server,
        "interface Faulty { procedure Boom(); }",
        vec![
            Box::new(|_: &ServerCtx, _: &[Value]| Err(CallError::ServerFault("deliberate".into())))
                as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Faulty").unwrap();
    for _ in 0..12 {
        // More iterations than A-stacks: leaks would exhaust the queue.
        let err = binding.call(0, &thread, "Boom", &[]).unwrap_err();
        assert!(matches!(err, CallError::ServerFault(_)));
        assert_eq!(thread.call_depth(), 0, "linkage must be unwound");
    }
}

#[test]
fn nested_calls_cross_three_domains() {
    let rt = TestRuntime::new().build();

    // C calls B; B's handler calls A.
    let domain_a = rt.kernel().create_domain("A");
    rt.export(
        &domain_a,
        "interface Inner { procedure Twice(x: int32) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(2 * x)))
        }) as Handler],
    )
    .unwrap();

    let domain_b = rt.kernel().create_domain("B");
    let inner_binding = std::sync::Mutex::new(None::<Binding>);
    let rt2 = Arc::clone(&rt);
    let domain_b2 = Arc::clone(&domain_b);
    rt.export(
        &domain_b,
        "interface Outer { procedure TwicePlusOne(x: int32) -> int32; }",
        vec![Box::new(move |ctx: &ServerCtx, args: &[Value]| {
            let mut guard = inner_binding.lock().unwrap();
            if guard.is_none() {
                *guard = Some(rt2.import(&domain_b2, "Inner").expect("nested import"));
            }
            let b = guard.as_ref().expect("bound");
            let out = b.call_indexed(ctx.cpu_id, &ctx.thread, 0, args)?;
            let Some(Value::Int32(doubled)) = out.ret else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(doubled + 1)))
        }) as Handler],
    )
    .unwrap();

    let client = rt.kernel().create_domain("C");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Outer").unwrap();
    let out = binding
        .call(0, &thread, "TwicePlusOne", &[Value::Int32(20)])
        .unwrap();
    assert_eq!(out.ret, Some(Value::Int32(41)));
    assert_eq!(thread.call_depth(), 0);
    assert_eq!(thread.current_domain(), client.id());
}

#[test]
fn copy_ops_match_table_3() {
    // Mutable (interpreted) 200-byte in parameter: LRPC copies A on call,
    // E on the server side (defensive copy), nothing else.
    let rt = TestRuntime::new().build();
    let server = rt.kernel().create_domain("copysrv");
    rt.export(
        &server,
        r#"interface Copies {
            procedure Mutable(data: in var bytes[200]);
            procedure Immutable(data: in bytes[200] noninterpreted);
            procedure Returns() -> int32;
        }"#,
        vec![
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(1)))) as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Copies").unwrap();

    let mutable = binding
        .call(0, &thread, "Mutable", &[Value::Var(vec![1; 200])])
        .unwrap();
    assert_eq!(
        mutable.copies.letters_string(),
        "AE",
        "interpreted data needs the E copy"
    );

    let immutable = binding
        .call(0, &thread, "Immutable", &[Value::Bytes(vec![1; 200])])
        .unwrap();
    assert_eq!(
        immutable.copies.letters_string(),
        "A",
        "noninterpreted data is copied once"
    );

    let returns = binding.call(0, &thread, "Returns", &[]).unwrap();
    assert_eq!(
        returns.copies.letters_string(),
        "F",
        "returns copy A-stack to destination"
    );
}

#[test]
fn concurrent_clients_do_not_interfere() {
    let env = Arc::new(setup_with(TestRuntime::new().cpus(4).domain_caching(false)));
    let mut handles = Vec::new();
    for cpu in 0..4 {
        let env = Arc::clone(&env);
        handles.push(std::thread::spawn(move || {
            let thread = env.rt.kernel().spawn_thread(&env.client);
            for i in 0..200 {
                let out = env
                    .binding
                    .call_indexed(cpu, &thread, 1, &[Value::Int32(i), Value::Int32(1)])
                    .expect("concurrent call");
                assert_eq!(out.ret, Some(Value::Int32(i + 1)));
            }
        }));
    }
    for h in handles {
        h.join().expect("no panics");
    }
}

#[test]
fn astack_exhaustion_fails_cleanly_with_fail_policy() {
    // A procedure with a single A-stack: hold it hostage via a handler
    // that recursively calls back in. Simpler: claim the linkage slot
    // directly to simulate a concurrent call in flight.
    let rt = TestRuntime::new()
        .domain_caching(false)
        .astack_policy(lrpc::AStackPolicy::Fail)
        .build();
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface One { [astacks = 1] procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "One").unwrap();

    // Drain the only A-stack.
    let held = binding
        .state()
        .astacks
        .acquire(0, lrpc::AStackPolicy::Fail, rt.kernel(), &client, &server)
        .unwrap();
    let err = binding.call(0, &thread, "P", &[]).unwrap_err();
    assert!(matches!(err, CallError::NoAStacks));
    binding.state().astacks.release(held);
    binding.call(0, &thread, "P", &[]).unwrap();
}

#[test]
fn grow_policy_allocates_overflow_astacks() {
    let rt = TestRuntime::new()
        .domain_caching(false)
        .astack_policy(lrpc::AStackPolicy::Grow)
        .build();
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface One { [astacks = 1] procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "One").unwrap();
    let _held = binding
        .state()
        .astacks
        .acquire(0, lrpc::AStackPolicy::Fail, rt.kernel(), &client, &server)
        .unwrap();
    // The call grows an overflow A-stack and pays the slower validation.
    let out = binding.call(0, &thread, "P", &[]).unwrap();
    assert!(out.meter.total_for(Phase::Validation) > Nanos::ZERO);
    assert_eq!(binding.state().astacks.total_count(), 2);
}

#[test]
fn captured_thread_recovery_delivers_call_aborted() {
    let rt = TestRuntime::new().cpus(2).domain_caching(false).build();
    let server = rt.kernel().create_domain("capturer");
    let gate = Arc::new((parking_lot::Mutex::new(false), parking_lot::Condvar::new()));
    let gate2 = Arc::clone(&gate);
    rt.export(
        &server,
        "interface Cap { procedure Hold(); }",
        vec![Box::new(move |_: &ServerCtx, _: &[Value]| {
            // "It is therefore possible for one domain to 'capture'
            // another's thread and hold it indefinitely."
            let (lock, cv) = &*gate2;
            let mut released = lock.lock();
            while !*released {
                cv.wait(&mut released);
            }
            Ok(Reply::none())
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("victim");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Cap").unwrap();

    let captured = Arc::clone(&thread);
    let call = {
        let rt = Arc::clone(&rt);
        let _ = &rt;
        std::thread::spawn(move || binding.call(0, &captured, "Hold", &[]))
    };
    // Wait until the thread is captured inside the server.
    while thread.current_domain() != server.id() {
        std::thread::yield_now();
    }

    // The client gives up and gets a replacement thread.
    let replacement = rt.abandon_captured(&thread).expect("thread is mid-call");
    assert_eq!(replacement.home_domain(), client.id());
    assert_eq!(replacement.call_depth(), 0);

    // Release the server; the captured thread is destroyed on release and
    // the outstanding call reports call-aborted.
    {
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }
    let result = call.join().unwrap();
    assert!(
        matches!(result, Err(CallError::CallAborted)),
        "got {result:?}"
    );
    assert_eq!(thread.status(), kernel::ThreadStatus::Destroyed);
}

#[test]
fn termination_with_multiple_outstanding_calls_mixes_failed_and_aborted() {
    // Section 5.3, both exceptions at once: two clients are captured
    // inside the same server when its domain terminates. The client that
    // had already abandoned its thread sees call-aborted; the one still
    // waiting sees call-failed. Neither hangs, and the A-stack/linkage
    // pairs of both bindings come back.
    let rt = TestRuntime::new().cpus(4).domain_caching(false).build();
    let server = rt.kernel().create_domain("doomed");
    let gate = Arc::new((parking_lot::Mutex::new(false), parking_lot::Condvar::new()));
    let gate2 = Arc::clone(&gate);
    rt.export(
        &server,
        "interface Cap2 { [astacks = 4] procedure Hold(); }",
        vec![Box::new(move |_: &ServerCtx, _: &[Value]| {
            let (lock, cv) = &*gate2;
            let mut released = lock.lock();
            while !*released {
                cv.wait(&mut released);
            }
            Ok(Reply::none())
        }) as Handler],
    )
    .unwrap();

    let ca = rt.kernel().create_domain("patient");
    let cb = rt.kernel().create_domain("impatient");
    let ta = rt.kernel().spawn_thread(&ca);
    let tb = rt.kernel().spawn_thread(&cb);
    let ba = Arc::new(rt.import(&ca, "Cap2").unwrap());
    let bb = Arc::new(rt.import(&cb, "Cap2").unwrap());

    let call_a = {
        let (b, t) = (Arc::clone(&ba), Arc::clone(&ta));
        std::thread::spawn(move || b.call(0, &t, "Hold", &[]))
    };
    let call_b = {
        let (b, t) = (Arc::clone(&bb), Arc::clone(&tb));
        std::thread::spawn(move || b.call(1, &t, "Hold", &[]))
    };
    while ta.current_domain() != server.id() || tb.current_domain() != server.id() {
        std::thread::yield_now();
    }

    // B gives up first (call-aborted path), then the domain dies under A
    // (call-failed path), then the handlers finally return.
    let replacement = rt.abandon_captured(&tb).expect("tb is captured");
    assert_eq!(replacement.home_domain(), cb.id());
    rt.terminate_domain(&server);
    {
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }

    let ra = call_a.join().unwrap();
    let rb = call_b.join().unwrap();
    assert!(matches!(ra, Err(CallError::CallFailed)), "got {ra:?}");
    assert!(matches!(rb, Err(CallError::CallAborted)), "got {rb:?}");
    assert_eq!(tb.status(), kernel::ThreadStatus::Destroyed);
    assert_eq!(ta.call_depth(), 0);

    for binding in [&ba, &bb] {
        let astacks = &binding.state().astacks;
        assert_eq!(astacks.free_count(0), 4, "every A-stack back on its queue");
        let mut i = 0;
        while let Some(slot) = astacks.linkage(i) {
            assert!(!slot.is_in_use(), "linkage record {i} left claimed");
            i += 1;
        }
    }
    assert_eq!(rt.kernel().snapshot().threads_in_calls, 0);
}
