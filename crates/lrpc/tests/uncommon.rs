//! The uncommon cases (Section 5), end-to-end: large out-of-band
//! arguments, complex marshaled types, conformance attacks, multiple
//! clients, and E-stack behaviour under churn.

use std::sync::Arc;

use idl::wire::{TreeVal, Value};
use lrpc::{CallError, Handler, LrpcRuntime, Reply, ServerCtx, TestRuntime};

fn runtime(n_cpus: usize) -> Arc<LrpcRuntime> {
    TestRuntime::new()
        .cpus(n_cpus)
        .domain_caching(false)
        .build()
}

#[test]
fn oversized_arguments_travel_out_of_band() {
    // "In cases where the arguments are too large to fit into the A-stack,
    // the stubs transfer data in a large out-of-band memory segment.
    // Handling unexpectedly large parameters is complicated and relatively
    // expensive, but infrequent."
    let rt = runtime(1);
    let server = rt.kernel().create_domain("blob-server");
    rt.export(
        &server,
        "interface Blob { procedure Sum(data: in var bytes[8192]) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(data) = &args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(
                data.iter().map(|&b| b as i32).sum(),
            )))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Blob").unwrap();

    // The 8 KiB maximum exceeds the Ethernet-sized A-stack, so the slot is
    // an out-of-band descriptor.
    let proc = &binding.interface().procs[0];
    assert!(proc.layout.uses_out_of_band);

    let payload = vec![1u8; 5000];
    let out = binding
        .call(0, &thread, "Sum", &[Value::Var(payload)])
        .unwrap();
    assert_eq!(out.ret, Some(Value::Int32(5000)));

    // The out-of-band path is "relatively expensive": it runs on the
    // marshaling cost scale. A small inline call is far cheaper.
    let small = binding
        .call(0, &thread, "Sum", &[Value::Var(vec![1u8; 4])])
        .unwrap();
    assert_eq!(small.ret, Some(Value::Int32(4)));
    assert!(
        out.elapsed > small.elapsed,
        "{} vs {}",
        out.elapsed,
        small.elapsed
    );
}

#[test]
fn recursive_types_marshal_through_the_library_path() {
    // "Calls having complex or heavyweight parameters — linked lists or
    // data that must be made known to the garbage collector — are handled
    // with Modula2+ marshaling code."
    let rt = runtime(1);
    let server = rt.kernel().create_domain("tree-server");
    rt.export(
        &server,
        "interface Trees { procedure CountNodes(t: tree) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Tree(t) = &args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(t.node_count() as i32)))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Trees").unwrap();

    // The compile-time shift: this procedure got Modula2+ stubs.
    assert_eq!(
        binding.interface().procs[0].lang,
        idl::StubLang::Modula2Plus
    );

    let tree = TreeVal::Node(
        Box::new(TreeVal::Node(
            Box::new(TreeVal::Leaf),
            1,
            Box::new(TreeVal::Leaf),
        )),
        2,
        Box::new(TreeVal::Node(
            Box::new(TreeVal::Leaf),
            3,
            Box::new(TreeVal::Node(
                Box::new(TreeVal::Leaf),
                4,
                Box::new(TreeVal::Leaf),
            )),
        )),
    );
    let out = binding
        .call(0, &thread, "CountNodes", &[Value::Tree(tree)])
        .unwrap();
    assert_eq!(out.ret, Some(Value::Int32(4)));
    // Marshaling time shows up in the meter.
    assert!(out.meter.total_for(firefly::meter::Phase::Marshal) > firefly::Nanos::ZERO);
}

#[test]
fn cardinal_conformance_attack_is_stopped_at_the_server_copy() {
    // "A client could crash a server by passing it an unwanted negative
    // value. To protect itself, the server must check type-sensitive
    // values for conformancy before using them."
    let rt = runtime(1);
    let server = rt.kernel().create_domain("picky");
    rt.export(
        &server,
        "interface Picky { procedure Take(n: cardinal) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            // The handler would crash on a negative value; the checked
            // copy must have stopped it before we get here.
            let Value::Cardinal(n) = args[0] else {
                unreachable!()
            };
            assert!(n >= 0, "the stub let a non-conforming CARDINAL through");
            Ok(Reply::value(Value::Int32(n as i32)))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("attacker");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Picky").unwrap();

    let err = binding
        .call(0, &thread, "Take", &[Value::Cardinal(-1)])
        .unwrap_err();
    assert!(matches!(err, CallError::Stub(_)), "got {err}");
    // The attack leaves the binding usable and the linkage unwound.
    assert_eq!(thread.call_depth(), 0);
    let ok = binding
        .call(0, &thread, "Take", &[Value::Cardinal(5)])
        .unwrap();
    assert_eq!(ok.ret, Some(Value::Int32(5)));
}

#[test]
fn each_client_gets_its_own_pairwise_astacks() {
    let rt = runtime(1);
    let server = rt.kernel().create_domain("shared");
    rt.export(
        &server,
        "interface S { procedure P() -> int32; }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(1)))) as Handler],
    )
    .unwrap();

    let alice = rt.kernel().create_domain("alice");
    let bob = rt.kernel().create_domain("bob");
    let ba = rt.import(&alice, "S").unwrap();
    let bb = rt.import(&bob, "S").unwrap();

    // Distinct pairwise channels: Alice cannot touch Bob's A-stacks.
    let alice_region = ba.state().astacks.primary_region();
    let bob_region = bb.state().astacks.primary_region();
    assert_ne!(alice_region.id(), bob_region.id());
    assert!(bob.ctx().check(alice_region.id(), false, false).is_err());
    assert!(alice.ctx().check(bob_region.id(), false, false).is_err());

    // Both work, interleaved.
    let ta = rt.kernel().spawn_thread(&alice);
    let tb = rt.kernel().spawn_thread(&bob);
    for _ in 0..5 {
        assert_eq!(
            ba.call(0, &ta, "P", &[]).unwrap().ret,
            Some(Value::Int32(1))
        );
        assert_eq!(
            bb.call(0, &tb, "P", &[]).unwrap().ret,
            Some(Value::Int32(1))
        );
    }
}

#[test]
fn lifo_astacks_keep_the_estack_association_warm() {
    // A-stacks are LIFO managed precisely so the A-stack/E-stack
    // association keeps getting reused.
    let rt = runtime(1);
    let server = rt.kernel().create_domain("warm");
    rt.export(
        &server,
        "interface W { procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "W").unwrap();
    for _ in 0..100 {
        binding.call(0, &thread, "P", &[]).unwrap();
    }
    let stats = rt.estack_pool(&server).stats();
    assert_eq!(stats.allocations, 1, "one E-stack serves all serial calls");
    assert_eq!(stats.lazy_hits, 99);
    assert_eq!(stats.reclamations, 0);
}

#[test]
fn alerted_server_procedure_can_cooperate() {
    // "Taos does have an alert mechanism which allows one thread to signal
    // another, but the notified thread may choose to ignore the alert."
    // A cooperative server checks the alert and bails out early.
    let rt = runtime(2);
    let server = rt.kernel().create_domain("cooperative");
    rt.export(
        &server,
        "interface C { procedure Long() -> int32; }",
        vec![Box::new(|ctx: &ServerCtx, _: &[Value]| {
            // Simulate a long loop that polls for alerts.
            for i in 0..1_000_000 {
                if ctx.thread.take_alert() {
                    return Ok(Reply::value(Value::Int32(-i)));
                }
                if i == 10 {
                    // Nobody alerted yet in this test setup? Keep going a
                    // few rounds; the client alerts before calling.
                }
                std::thread::yield_now();
            }
            Ok(Reply::value(Value::Int32(0)))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "C").unwrap();

    // Alert the thread before the call; the server sees it immediately.
    thread.alert();
    let out = binding.call(0, &thread, "Long", &[]).unwrap();
    assert_eq!(
        out.ret,
        Some(Value::Int32(0)),
        "alert consumed at i=0 returns -0"
    );
}

#[test]
fn import_of_unexported_interface_times_out() {
    let rt = TestRuntime::new()
        .machine(firefly::cpu::Machine::cvax_uniprocessor())
        .import_timeout(std::time::Duration::from_millis(20))
        .build();
    let client = rt.kernel().create_domain("c");
    let err = rt.import(&client, "Ghost").map(|_| ()).unwrap_err();
    assert!(matches!(err, CallError::ImportTimeout { .. }));
}

#[test]
fn late_export_wakes_a_waiting_importer() {
    // "The importer waits while the kernel notifies the server's waiting
    // clerk."
    let rt = TestRuntime::new().cpus(2).build();
    let client = rt.kernel().create_domain("early-bird");
    let importer = {
        let rt = Arc::clone(&rt);
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            rt.import(&client, "LateSvc")
                .map(|b| b.interface().name.clone())
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    let server = rt.kernel().create_domain("late-server");
    rt.export(
        &server,
        "interface LateSvc { procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    assert_eq!(importer.join().unwrap().unwrap(), "LateSvc");
}

#[test]
fn runtime_prodding_turns_misses_into_exchanges() {
    let rt = TestRuntime::new().cpus(4).build();
    let server = rt.kernel().create_domain("hot");
    rt.export(
        &server,
        "interface H { procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "H").unwrap();

    // A few calls with no idle CPU parked anywhere: all misses.
    for _ in 0..4 {
        let out = binding.call(0, &thread, "P", &[]).unwrap();
        assert!(!out.exchanged_on_call);
    }
    assert!(server.idle_misses() >= 4);

    // Two CPUs go idle; the runtime prods them toward the busy domains.
    rt.kernel()
        .machine()
        .cpu(2)
        .set_idle_in(Some(firefly::vm::ContextId::KERNEL));
    rt.kernel()
        .machine()
        .cpu(3)
        .set_idle_in(Some(firefly::vm::ContextId::KERNEL));
    let assigned = rt.rebalance_idle_processors();
    assert!(
        assigned >= 1,
        "at least one idle CPU parked in a hot domain"
    );

    // Now calls exchange instead of switching.
    let out = binding.call(0, &thread, "P", &[]).unwrap();
    assert!(
        out.exchanged_on_call,
        "the prodded CPU is claimed at call time"
    );
    assert!(binding.state().stats.exchanges() >= 1);
}

#[test]
fn estacks_are_primed_and_the_user_sp_tracks_the_call() {
    // "The kernel primes E-stacks with the initial call frame expected by
    // the server's procedure" and "updates the thread's user stack pointer
    // to run off of the new E-stack".
    let rt = runtime(1);
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface E { procedure P(); }",
        vec![Box::new(|ctx: &ServerCtx, _: &[Value]| {
            // While the procedure runs, the thread's SP points into an
            // E-stack, not at the caller's stack (0 for a fresh thread).
            assert_ne!(ctx.thread.user_sp(), 0, "SP must run off the E-stack");
            Ok(Reply::none())
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "E").unwrap();
    assert_eq!(thread.user_sp(), 0);
    binding.call(0, &thread, "P", &[]).unwrap();
    assert_eq!(thread.user_sp(), 0, "the caller's SP is restored on return");

    // The primed call frame is in the E-stack region. The pool keys
    // associations by the A-stack's global identity.
    let aref = binding.state().astacks.lookup(0).unwrap();
    let key = (aref.region.id().0 << 24) | aref.index as u64;
    let pool = rt.estack_pool(&server);
    let (estack, fresh) = pool.get_for_call(rt.kernel(), key);
    assert!(!fresh, "the call's association persists");
    let header = estack.read_vec(0, 16).unwrap();
    assert_eq!(&header[8..], &0xF1FE_F1FE_CA11_F4A3u64.to_le_bytes());
}

#[test]
fn globally_shared_astacks_trade_safety_not_performance() {
    // Section 3.5's Firefly caveat, as an ablation: global mapping has
    // identical latency but a third party can read the channel.
    use lrpc::AStackMapping;
    let mk = |mapping: AStackMapping| {
        let rt = TestRuntime::new()
            .domain_caching(false)
            .astack_mapping(mapping)
            .build();
        let server = rt.kernel().create_domain("s");
        rt.export(
            &server,
            "interface G { procedure P(); }",
            vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
        )
        .unwrap();
        // The snoop exists before binding, so the global mode maps the
        // A-stacks into it.
        let snoop = rt.kernel().create_domain("snoop");
        let client = rt.kernel().create_domain("c");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "G").unwrap();
        binding.call(0, &thread, "P", &[]).unwrap();
        let elapsed = binding.call(0, &thread, "P", &[]).unwrap().elapsed;
        let readable = snoop
            .ctx()
            .check(binding.state().astacks.primary_region().id(), false, false)
            .is_ok();
        (elapsed, readable)
    };
    let (pairwise_time, pairwise_readable) = mk(AStackMapping::Pairwise);
    let (global_time, global_readable) = mk(AStackMapping::GloballyShared);
    assert_eq!(pairwise_time, global_time, "identical performance");
    assert!(!pairwise_readable, "pairwise: third parties fault");
    assert!(global_readable, "globally shared: the channel is exposed");
}

#[test]
fn panicking_server_procedure_is_isolated() {
    // Failure isolation: a crashing server procedure surfaces as a
    // call-level exception in the client, never as a client crash, and
    // every call resource unwinds.
    let rt = runtime(1);
    let server = rt.kernel().create_domain("buggy");
    rt.export(
        &server,
        "interface B { procedure Crash(); procedure Fine() -> int32; }",
        vec![
            Box::new(|_: &ServerCtx, _: &[Value]| -> Result<Reply, CallError> {
                panic!("server bug: index out of range")
            }) as Handler,
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(1)))) as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "B").unwrap();

    for _ in 0..8 {
        let err = binding.call(0, &thread, "Crash", &[]).unwrap_err();
        let CallError::ServerFault(msg) = err else {
            panic!("expected ServerFault")
        };
        assert!(msg.contains("server bug"), "{msg}");
        assert_eq!(thread.call_depth(), 0, "linkage unwound after the fault");
    }
    // The server as a whole remains usable (the paper's Taos would only
    // terminate the domain on an *unhandled* exception escalation).
    let ok = binding.call(0, &thread, "Fine", &[]).unwrap();
    assert_eq!(ok.ret, Some(Value::Int32(1)));
}

#[test]
fn oob_segments_are_mapped_and_reclaimed_per_call() {
    // The out-of-band segment is a real pairwise-mapped region that lives
    // exactly as long as the call.
    let rt = runtime(1);
    let server = rt.kernel().create_domain("blob");
    rt.export(
        &server,
        "interface O { procedure Len(data: in var bytes[8192]) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(v) = &args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "O").unwrap();

    // Warm up once so the E-stack (which persists by design) exists.
    binding
        .call(0, &thread, "Len", &[Value::Var(vec![3u8; 4000])])
        .unwrap();
    let before = rt.kernel().machine().mem().region_count();
    for _ in 0..5 {
        let out = binding
            .call(0, &thread, "Len", &[Value::Var(vec![3u8; 4000])])
            .unwrap();
        assert_eq!(out.ret, Some(Value::Int32(4000)));
        assert_eq!(
            rt.kernel().machine().mem().region_count(),
            before,
            "the per-call out-of-band segment is freed on return"
        );
    }
    // Inline calls never allocate a segment.
    let small = binding
        .call(0, &thread, "Len", &[Value::Var(vec![3u8; 8])])
        .unwrap();
    assert_eq!(small.ret, Some(Value::Int32(8)));
    assert_eq!(rt.kernel().machine().mem().region_count(), before);
}
