//! Bind-time bulk arenas for large out-of-band parameters.
//!
//! Section 5.2 calls handling unexpectedly large parameters "complicated
//! and relatively expensive, but infrequent": the baseline call path maps
//! a fresh pairwise segment for every out-of-band call and unmaps it on
//! return. When an interface *declares* large variable parameters, though,
//! the traffic is not unexpected — so, exactly like the A-stack lists, the
//! segment can be allocated once at bind time and reused per call.
//!
//! A [`BulkArena`] is one pairwise-mapped region (same
//! `kernel::map_pairwise` primitive, same protection argument as the
//! A-stacks: only the client and server domains pass the mapping check),
//! carved into fixed-size chunks sized from the interface's declared
//! maxima. Chunks are handed out by a lock-free Treiber free stack — the
//! same discipline as [`crate::astack`] — so steady-state large calls
//! place their payloads by reference in the arena with zero map/unmap
//! traffic and zero locks. A call whose payload exceeds the chunk size
//! (an *unbounded* complex type that outgrew its estimate) or that finds
//! the arena exhausted falls back to the per-call segment path, which
//! stays fully functional.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use firefly::mem::{Region, PAGE_SIZE};
use idl::layout::{SlotKind, OOB_DESCRIPTOR_SIZE};
use idl::stubgen::CompiledInterface;
use idl::types::Ty;
use kernel::kernel::Kernel;
use kernel::Domain;

use crate::astack::AStackSet;

/// Chunk-size estimate for out-of-band parameters whose encoded size has
/// no declared bound (complex types). Payloads that outgrow it take the
/// per-call fallback.
pub const UNBOUNDED_ESTIMATE: usize = 4096;

/// One chunk leased from the arena for the duration of a call.
#[derive(Clone, Copy, Debug)]
pub struct BulkChunk {
    /// Chunk index (pass back to [`BulkArena::release`]).
    pub index: usize,
    /// Byte offset of the chunk within the arena region.
    pub offset: usize,
    /// Chunk capacity in bytes.
    pub size: usize,
}

/// Lock-free Treiber LIFO of free chunk indices — the same packed
/// `(version << 32) | index + 1` head and successor-link array as the
/// A-stack queues, so chunk churn never serializes concurrent calls.
struct FreeStack {
    head: AtomicU64,
    free_len: AtomicUsize,
}

const EMPTY: u64 = 0;
const LOW_MASK: u64 = 0xFFFF_FFFF;

fn pack(version: u64, idx_plus1: u64) -> u64 {
    (version << 32) | idx_plus1
}

impl FreeStack {
    fn new() -> FreeStack {
        FreeStack {
            head: AtomicU64::new(EMPTY),
            free_len: AtomicUsize::new(0),
        }
    }

    fn push(&self, links: &[AtomicU64], index: usize) {
        let node = index as u64 + 1;
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            links[index].store(head & LOW_MASK, Ordering::SeqCst);
            let next = pack((head >> 32) + 1, node);
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.free_len.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                Err(cur) => head = cur,
            }
        }
    }

    fn pop(&self, links: &[AtomicU64]) -> Option<usize> {
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            let node = head & LOW_MASK;
            if node == EMPTY {
                return None;
            }
            let index = (node - 1) as usize;
            let succ = links[index].load(Ordering::SeqCst) & LOW_MASK;
            let next = pack((head >> 32) + 1, succ);
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.free_len.fetch_sub(1, Ordering::SeqCst);
                    return Some(index);
                }
                Err(cur) => head = cur,
            }
        }
    }

    fn len(&self) -> usize {
        self.free_len.load(Ordering::SeqCst)
    }
}

/// The pairwise-shared bulk region of one binding.
pub struct BulkArena {
    region: Arc<Region>,
    chunk_size: usize,
    chunk_count: usize,
    free: FreeStack,
    links: Vec<AtomicU64>,
    /// Chunks currently leased to in-flight calls; registered by the
    /// runtime as `lrpc_bulk_arena_busy:{interface}`.
    busy: obs::Gauge,
    /// Bind-time label; keys this arena's record/replay stream.
    label: String,
    /// Record/replay stream for chunk acquire outcomes (`bulk:{label}`).
    rr: OnceLock<replay::Handle>,
}

/// Largest encoded size a type can occupy in an out-of-band segment, or
/// `None` when the type has no declared bound (complex encodings).
fn max_encoded_size(ty: &Ty) -> Option<usize> {
    match ty {
        Ty::VarBytes(max) => Some(4 + max),
        _ => ty.fixed_size(),
    }
}

/// Bytes one call of `proc` can need in the arena: every in-direction
/// out-of-band slot at its declared maximum, each with its 8-byte segment
/// header. Unbounded types contribute [`UNBOUNDED_ESTIMATE`].
fn proc_oob_need(proc: &idl::stubgen::CompiledProc) -> usize {
    proc.def
        .params
        .iter()
        .zip(&proc.layout.params)
        .filter(|(p, s)| p.dir.is_in() && s.kind == SlotKind::OutOfBand)
        .map(|(p, _)| max_encoded_size(&p.ty).unwrap_or(UNBOUNDED_ESTIMATE) + OOB_DESCRIPTOR_SIZE)
        .sum()
}

fn align_up(n: usize, to: usize) -> usize {
    n.div_ceil(to) * to
}

impl BulkArena {
    /// Allocates the bulk arena for an interface at bind time, or `None`
    /// when no procedure uses out-of-band parameters (fixed-size
    /// interfaces pay nothing). The chunk size covers the largest declared
    /// per-call need, page-aligned; the chunk count matches the binding's
    /// A-stack count, so every simultaneous call the binding admits can
    /// hold a chunk.
    pub fn for_interface(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        iface: &CompiledInterface,
        astacks: &AStackSet,
    ) -> Option<BulkArena> {
        let need = iface
            .procs
            .iter()
            .filter(|p| p.layout.uses_out_of_band)
            .map(proc_oob_need)
            .max()
            .filter(|&n| n > 0)?;
        let chunk_size = align_up(need, PAGE_SIZE);
        let chunk_count = astacks.total_count().max(1);
        Some(BulkArena::allocate(
            kernel,
            client,
            server,
            label,
            chunk_size,
            chunk_count,
        ))
    }

    /// Allocates an arena of `chunk_count` chunks of `chunk_size` bytes,
    /// pairwise-mapped into exactly the client and server domains.
    pub fn allocate(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        chunk_size: usize,
        chunk_count: usize,
    ) -> BulkArena {
        assert!(chunk_count < u32::MAX as usize, "chunk indices must pack");
        let region = kernel.map_pairwise(label, client, server, (chunk_size * chunk_count).max(1));
        let links: Vec<AtomicU64> = (0..chunk_count).map(|_| AtomicU64::new(EMPTY)).collect();
        let free = FreeStack::new();
        // Seed highest-first so the first acquire leases chunk 0.
        for i in (0..chunk_count).rev() {
            free.push(&links, i);
        }
        BulkArena {
            region,
            chunk_size,
            chunk_count,
            free,
            links,
            busy: obs::Gauge::new(),
            label: label.to_string(),
            rr: OnceLock::new(),
        }
    }

    /// Attaches a record/replay session: every chunk acquire outcome
    /// (index or fallback) flows through the `bulk:{label}` stream. Live
    /// sessions are ignored; a second attach is ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() {
            return;
        }
        let _ = self.rr.set(session.stream(&format!("bulk:{}", self.label)));
    }

    /// Leases a chunk able to hold `need` bytes. `None` when the payload
    /// exceeds the chunk size or every chunk is in flight — the caller
    /// falls back to a per-call segment.
    pub fn acquire(&self, need: usize) -> Option<BulkChunk> {
        let chunk = self.acquire_inner(need);
        if let Some(h) = self.rr.get() {
            // Which chunk the lock-free pop produced — or that the call
            // fell back to a per-call segment — is the recorded decision.
            h.emit(
                replay::kind::BULK_ACQUIRE,
                chunk.as_ref().map_or(0, |c| c.index as u64 + 1),
            );
        }
        chunk
    }

    fn acquire_inner(&self, need: usize) -> Option<BulkChunk> {
        if need > self.chunk_size {
            return None;
        }
        let index = self.free.pop(&self.links)?;
        self.busy.inc();
        Some(BulkChunk {
            index,
            offset: index * self.chunk_size,
            size: self.chunk_size,
        })
    }

    /// Returns a chunk to the free stack at call return.
    pub fn release(&self, index: usize) {
        debug_assert!(index < self.chunk_count);
        self.busy.dec();
        self.free.push(&self.links, index);
    }

    /// The arena's backing region (pairwise-mapped at bind time).
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// Bytes per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Total chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// Chunks currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Live occupancy gauge (chunks leased to in-flight calls).
    pub fn busy_gauge(&self) -> &obs::Gauge {
        &self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    fn setup() -> (Arc<Kernel>, Arc<Domain>, Arc<Domain>) {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let c = k.create_domain("client");
        let s = k.create_domain("server");
        (k, c, s)
    }

    fn compiled(src: &str) -> CompiledInterface {
        idl::stubgen::compile(&idl::parse(src).unwrap())
    }

    #[test]
    fn fixed_interfaces_get_no_arena() {
        let (k, c, s) = setup();
        let iface = compiled("interface B { procedure Add(a: int32, b: int32) -> int32; }");
        let astacks = AStackSet::allocate(&k, &c, &s, "astacks", &[(12, 5)]);
        assert!(BulkArena::for_interface(&k, &c, &s, "bulk", &iface, &astacks).is_none());
    }

    #[test]
    fn arena_sizes_from_the_declared_maximum() {
        let (k, c, s) = setup();
        let iface = compiled("interface B { procedure Send(pkt: var bytes[8192]); }");
        let astacks = AStackSet::allocate(&k, &c, &s, "astacks", &[(1500, 5)]);
        let arena = BulkArena::for_interface(&k, &c, &s, "bulk", &iface, &astacks).unwrap();
        // 4-byte length prefix + 8192 payload + 8-byte segment header,
        // rounded up to a page.
        assert!(arena.chunk_size() >= 8192 + 4 + OOB_DESCRIPTOR_SIZE);
        assert_eq!(arena.chunk_size() % PAGE_SIZE, 0);
        assert_eq!(arena.chunk_count(), 5);
        assert_eq!(arena.free_count(), 5);
    }

    #[test]
    fn chunks_are_lifo_disjoint_and_bounded() {
        let (k, c, s) = setup();
        let arena = BulkArena::allocate(&k, &c, &s, "bulk", 1024, 3);
        let a = arena.acquire(100).unwrap();
        let b = arena.acquire(1024).unwrap();
        assert_ne!(a.offset, b.offset);
        assert_eq!(a.offset, 0, "first lease takes chunk 0");
        assert!(arena.acquire(2000).is_none(), "oversized payloads refuse");
        let c3 = arena.acquire(1).unwrap();
        assert_eq!(arena.free_count(), 0);
        assert_eq!(arena.busy_gauge().get(), 3);
        assert!(arena.acquire(1).is_none(), "exhausted arena refuses");
        arena.release(c3.index);
        arena.release(b.index);
        arena.release(a.index);
        assert_eq!(arena.free_count(), 3);
        assert_eq!(arena.busy_gauge().get(), 0);
        // LIFO: the most recently released chunk comes back first.
        assert_eq!(arena.acquire(1).unwrap().index, a.index);
    }

    #[test]
    fn third_party_domain_cannot_touch_the_arena() {
        let (k, c, s) = setup();
        let third = k.create_domain("third");
        let arena = BulkArena::allocate(&k, &c, &s, "bulk", 512, 2);
        let region = arena.region();
        assert!(c.ctx().check(region.id(), true, false).is_ok());
        assert!(s.ctx().check(region.id(), true, false).is_ok());
        assert!(third.ctx().check(region.id(), false, false).is_err());
    }

    #[test]
    fn concurrent_lease_churn_conserves_chunks() {
        let (k, c, s) = setup();
        let arena = Arc::new(BulkArena::allocate(&k, &c, &s, "bulk", 256, 4));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let arena = Arc::clone(&arena);
                scope.spawn(move || {
                    for _ in 0..500 {
                        if let Some(chunk) = arena.acquire(64) {
                            std::hint::spin_loop();
                            arena.release(chunk.index);
                        }
                    }
                });
            }
        });
        assert_eq!(arena.free_count(), 4, "all chunks return to the stack");
        assert_eq!(arena.busy_gauge().get(), 0);
        let mut got: Vec<usize> = (0..4).map(|_| arena.acquire(1).unwrap().index).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
