//! Argument stacks (A-stacks) and their linkage records.
//!
//! At bind time the kernel "pair-wise allocates in the client and server
//! domains a number of A-stacks equal to the number of simultaneous calls
//! allowed. These A-stacks are mapped read-write and shared by both
//! domains" (Section 3.1). This module implements the bind-time allocation
//! and the call-time disciplines the paper describes:
//!
//! * procedures with equal A-stack sizes share a *class* of A-stacks
//!   ("Procedures in the same interface having A-stacks of similar size can
//!   share A-stacks");
//! * the primary A-stacks of an interface live contiguously in one region
//!   so call-time validation is "a simple range check" (Section 5.2);
//! * each class's free list is a LIFO queue private to the binding
//!   ("Each A-stack queue is guarded by its own lock", Section 3.4) —
//!   implemented here as a *lock-free* Treiber stack, so the paper's
//!   per-queue critical section shrinks to one compare-exchange and
//!   concurrent calls through different bindings (or different classes)
//!   never serialize at all;
//! * every A-stack has a kernel-private linkage slot, locatable from the
//!   A-stack by arithmetic, whose `in_use` flag enforces that "no other
//!   thread is currently using that A-stack/linkage pair";
//! * when the pre-allocated A-stacks run out the client can wait or
//!   allocate more; late allocations land in non-contiguous *overflow*
//!   regions that "take slightly more time to validate" (Section 5.2).
//!   Overflow indices are managed by a small mutex-guarded side list that
//!   the fast path never touches while no overflow exists;
//! * blocked waiters (the `Wait` exhaustion policy) park on a Condvar
//!   behind a FIFO ticket queue, so releases wake clients in arrival
//!   order — a starved caller cannot be overtaken indefinitely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use firefly::mem::Region;
use kernel::kernel::Kernel;
use kernel::thread::Linkage;
use kernel::Domain;
use parking_lot::{Condvar, Mutex};

use crate::error::CallError;

/// How A-stack regions are mapped at bind time.
///
/// Section 3.5: "While our implementation demonstrates the performance of
/// this design, the Firefly operating system does not yet support
/// pair-wise shared memory. Our current implementation places A-stacks in
/// globally shared virtual memory. Since mapping is done at bind time, an
/// implementation using pair-wise shared memory would have identical
/// performance, but greater safety."
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AStackMapping {
    /// Mapped read-write into exactly the client and server (the design).
    #[default]
    Pairwise,
    /// Mapped into every existing domain, as the paper's actual Firefly
    /// implementation did — identical performance, weaker safety.
    GloballyShared,
}

/// How `acquire` behaves when every A-stack of a class is in use
/// (Section 5.2: "the client can either wait for one to become available
/// ... or allocate more").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AStackPolicy {
    /// Fail immediately with [`CallError::NoAStacks`].
    Fail,
    /// Block until one is released or the timeout expires.
    Wait(Duration),
    /// Allocate an additional (overflow) A-stack.
    Grow,
}

/// One size class of A-stacks within a binding.
#[derive(Clone, Debug)]
pub struct AStackClass {
    /// Bytes per A-stack.
    pub size: usize,
    /// Primary (contiguous) A-stacks allocated at bind time.
    pub primary_count: usize,
    /// Global index of the first primary A-stack of this class.
    pub base_index: usize,
    /// Byte offset of that A-stack within the primary region.
    pub base_offset: usize,
}

/// Where one A-stack lives.
#[derive(Clone)]
pub struct AStackRef {
    /// Global index within the binding.
    pub index: usize,
    /// Size class.
    pub class: usize,
    /// Backing region (primary, or a private overflow region).
    pub region: Arc<Region>,
    /// Byte offset of the A-stack within the region.
    pub offset: usize,
    /// Bytes available.
    pub size: usize,
    /// True if this is an overflow A-stack (slower validation).
    pub overflow: bool,
}

/// The kernel-private record paired with each A-stack.
pub struct LinkageSlot {
    in_use: AtomicBool,
    record: Mutex<Option<Linkage>>,
}

impl LinkageSlot {
    fn new() -> LinkageSlot {
        LinkageSlot {
            in_use: AtomicBool::new(false),
            record: Mutex::new(None),
        }
    }

    /// Atomically claims the slot; fails if another thread holds it.
    pub fn try_claim(&self) -> bool {
        self.in_use
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Stores the caller's return linkage.
    pub fn set_record(&self, l: Linkage) {
        *self.record.lock() = Some(l);
    }

    /// Reads the stored linkage.
    pub fn record(&self) -> Option<Linkage> {
        *self.record.lock()
    }

    /// Releases the slot at return time.
    pub fn release(&self) {
        *self.record.lock() = None;
        self.in_use.store(false, Ordering::Release);
    }

    /// True while a call is using the pair.
    pub fn is_in_use(&self) -> bool {
        self.in_use.load(Ordering::Acquire)
    }
}

/// A lock-free Treiber LIFO of primary A-stack indices.
///
/// `head` packs an ABA-prevention version in the upper 32 bits and
/// `index + 1` in the lower 32 (0 = empty). Successor links live in the
/// set-wide `links` array, indexed by A-stack index; classes own disjoint
/// index ranges, so they never touch each other's links. The version is
/// bumped on every successful CAS, so a head re-pointing at a node that
/// was popped and re-pushed in between (the ABA scenario) cannot be
/// mistaken for an unchanged head.
///
/// All operations are SeqCst: the empty-queue wait protocol below relies
/// on a single total order between stack pushes/pops and the waiter
/// counter.
struct FreeStack {
    head: AtomicU64,
    free_len: AtomicUsize,
}

const EMPTY: u64 = 0;
const LOW_MASK: u64 = 0xFFFF_FFFF;

fn pack(version: u64, idx_plus1: u64) -> u64 {
    (version << 32) | idx_plus1
}

impl FreeStack {
    fn new() -> FreeStack {
        FreeStack {
            head: AtomicU64::new(EMPTY),
            free_len: AtomicUsize::new(0),
        }
    }

    fn push(&self, links: &[AtomicU64], index: usize) {
        let node = index as u64 + 1;
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            links[index].store(head & LOW_MASK, Ordering::SeqCst);
            let next = pack((head >> 32) + 1, node);
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.free_len.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                Err(cur) => head = cur,
            }
        }
    }

    fn pop(&self, links: &[AtomicU64]) -> Option<usize> {
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            let node = head & LOW_MASK;
            if node == EMPTY {
                return None;
            }
            let index = (node - 1) as usize;
            let succ = links[index].load(Ordering::SeqCst) & LOW_MASK;
            let next = pack((head >> 32) + 1, succ);
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.free_len.fetch_sub(1, Ordering::SeqCst);
                    return Some(index);
                }
                Err(cur) => head = cur,
            }
        }
    }

    fn len(&self) -> usize {
        self.free_len.load(Ordering::SeqCst)
    }
}

/// FIFO queue of clients blocked on an exhausted class.
struct WaitQueue {
    /// Tickets of blocked waiters, front = longest waiting. The mutex also
    /// serializes the check-then-wait against release's notify, which is
    /// what makes the wakeup protocol lossless.
    state: Mutex<WaitState>,
    available: Condvar,
    /// Mirror of `state.queue.len()` readable without the lock, so an
    /// uncontended release never touches the wait mutex.
    waiting: AtomicUsize,
}

#[derive(Default)]
struct WaitState {
    next_ticket: u64,
    queue: VecDeque<u64>,
}

struct ClassQueue {
    free: FreeStack,
    /// Free overflow indices of this class — the slow path; gated by
    /// `has_overflow` so the fast path takes no lock while the binding has
    /// never grown.
    overflow_free: Mutex<Vec<usize>>,
    has_overflow: AtomicBool,
    waiters: WaitQueue,
    /// A-stacks of this class currently held by in-flight calls.
    in_use: AtomicU64,
    /// High-water mark of `in_use` — the adaptive sizing controller's
    /// occupancy signal.
    peak_in_use: AtomicU64,
    /// Times an acquire found the class exhausted: a Fail-policy error, a
    /// blocked Wait entry, or a Grow overflow allocation all count one.
    stall_events: AtomicU64,
}

impl ClassQueue {
    fn new() -> ClassQueue {
        ClassQueue {
            free: FreeStack::new(),
            overflow_free: Mutex::new(Vec::new()),
            has_overflow: AtomicBool::new(false),
            waiters: WaitQueue {
                state: Mutex::new(WaitState::default()),
                available: Condvar::new(),
                waiting: AtomicUsize::new(0),
            },
            in_use: AtomicU64::new(0),
            peak_in_use: AtomicU64::new(0),
            stall_events: AtomicU64::new(0),
        }
    }
}

struct OverflowEntry {
    region: Arc<Region>,
    class: usize,
    linkage: Arc<LinkageSlot>,
}

/// All A-stacks of one binding.
pub struct AStackSet {
    primary: Arc<Region>,
    classes: Vec<AStackClass>,
    /// Procedure index → class index.
    proc_class: Vec<usize>,
    queues: Vec<ClassQueue>,
    /// Treiber-stack successor links, one per primary A-stack.
    links: Vec<AtomicU64>,
    /// Linkage slots of the primary A-stacks; index = A-stack index. Plain
    /// vector — the set never grows it, so lookup is lock-free.
    linkages: Vec<Arc<LinkageSlot>>,
    overflow: Mutex<Vec<OverflowEntry>>,
    primary_total: usize,
    /// Bind-time label (also names the primary region); keys this set's
    /// record/replay stream.
    label: String,
    /// Record/replay stream for acquire outcomes (`astack:{label}`).
    /// Empty in live mode — the lock-free fast path stays lock-free.
    rr: OnceLock<replay::Handle>,
}

impl AStackSet {
    /// Performs the bind-time allocation for an interface: groups
    /// procedures into size classes, allocates the primary A-stacks
    /// contiguously in one pairwise-mapped region, and creates a linkage
    /// slot per A-stack.
    ///
    /// `per_proc` gives, per procedure, its A-stack size and simultaneous
    /// call count (from the PDL).
    pub fn allocate(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        per_proc: &[(usize, u32)],
    ) -> AStackSet {
        AStackSet::allocate_mapped(
            kernel,
            client,
            server,
            label,
            per_proc,
            AStackMapping::Pairwise,
        )
    }

    /// Like [`AStackSet::allocate`] with an explicit mapping mode.
    pub fn allocate_mapped(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        per_proc: &[(usize, u32)],
        mapping: AStackMapping,
    ) -> AStackSet {
        // Group by exact size; the shared pool of a class gets the largest
        // count any member asked for (sharing bounds simultaneous calls by
        // the total number of shared A-stacks — a soft limit).
        let mut classes: Vec<AStackClass> = Vec::new();
        let mut proc_class = Vec::with_capacity(per_proc.len());
        for &(size, count) in per_proc {
            match classes.iter().position(|c| c.size == size) {
                Some(ci) => {
                    classes[ci].primary_count = classes[ci].primary_count.max(count as usize);
                    proc_class.push(ci);
                }
                None => {
                    classes.push(AStackClass {
                        size,
                        primary_count: count as usize,
                        base_index: 0,
                        base_offset: 0,
                    });
                    proc_class.push(classes.len() - 1);
                }
            }
        }

        // Lay the classes out contiguously.
        let mut index = 0;
        let mut offset = 0;
        for c in &mut classes {
            c.base_index = index;
            c.base_offset = offset;
            index += c.primary_count;
            offset += c.primary_count * c.size;
        }
        let primary_total = index;
        assert!(
            primary_total < u32::MAX as usize,
            "primary A-stack indices must fit the packed Treiber head"
        );
        let primary = kernel.map_pairwise(label, client, server, offset.max(1));
        if mapping == AStackMapping::GloballyShared {
            // The Firefly fallback: every existing domain gets the mapping.
            for d in kernel.domains() {
                d.ctx()
                    .map(primary.id(), firefly::vm::Protection::ReadWrite);
            }
        }

        let links: Vec<AtomicU64> = (0..primary_total).map(|_| AtomicU64::new(EMPTY)).collect();
        let queues: Vec<ClassQueue> = classes.iter().map(|_| ClassQueue::new()).collect();
        // Seed each class's stack highest-index-first so the first acquire
        // pops `base_index` — the order the old locked Vec produced.
        for (ci, c) in classes.iter().enumerate() {
            for i in (c.base_index..c.base_index + c.primary_count).rev() {
                queues[ci].free.push(&links, i);
            }
        }
        let linkages = (0..primary_total)
            .map(|_| Arc::new(LinkageSlot::new()))
            .collect();

        AStackSet {
            primary,
            classes,
            proc_class,
            queues,
            links,
            linkages,
            overflow: Mutex::new(Vec::new()),
            primary_total,
            label: label.to_string(),
            rr: OnceLock::new(),
        }
    }

    /// Attaches a record/replay session: every acquire outcome (index,
    /// overflow flag, or failure) flows through the `astack:{label}`
    /// stream. Live sessions are ignored; a second attach is ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() {
            return;
        }
        let _ = self
            .rr
            .set(session.stream(&format!("astack:{}", self.label)));
    }

    /// The size class used by procedure `proc_index`.
    ///
    /// # Panics
    ///
    /// Panics if the procedure index is out of range; callers validate the
    /// procedure identifier first.
    pub fn class_of_proc(&self, proc_index: usize) -> usize {
        self.proc_class[proc_index]
    }

    /// The classes of this set.
    pub fn classes(&self) -> &[AStackClass] {
        &self.classes
    }

    /// Total A-stacks (primary + overflow).
    pub fn total_count(&self) -> usize {
        firefly::meter::note_sharded_lock();
        self.primary_total + self.overflow.lock().len()
    }

    /// A-stacks of one class (primary + overflow).
    pub fn class_count(&self, class: usize) -> usize {
        let primary = self.classes[class].primary_count;
        if !self.queues[class].has_overflow.load(Ordering::SeqCst) {
            return primary;
        }
        firefly::meter::note_sharded_lock();
        primary
            + self
                .overflow
                .lock()
                .iter()
                .filter(|e| e.class == class)
                .count()
    }

    /// Number of currently free A-stacks in a class.
    pub fn free_count(&self, class: usize) -> usize {
        let q = &self.queues[class];
        let mut n = q.free.len();
        if q.has_overflow.load(Ordering::SeqCst) {
            firefly::meter::note_sharded_lock();
            n += q.overflow_free.lock().len();
        }
        n
    }

    /// Number of clients currently blocked waiting for an A-stack of
    /// `class` (diagnostic; the FIFO-fairness tests observe it).
    pub fn waiters(&self, class: usize) -> usize {
        self.queues[class].waiters.waiting.load(Ordering::SeqCst)
    }

    /// Times an acquire of `class` found it exhausted (Fail errors, Wait
    /// entries and Grow allocations all count).
    pub fn stall_events(&self, class: usize) -> u64 {
        self.queues[class].stall_events.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously held A-stacks of `class`.
    pub fn peak_in_use(&self, class: usize) -> u64 {
        self.queues[class].peak_in_use.load(Ordering::Relaxed)
    }

    /// Total stall events across every class of the set.
    pub fn total_stall_events(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.stall_events.load(Ordering::Relaxed))
            .sum()
    }

    /// Pops a free A-stack of `class` if one is available: the lock-free
    /// primary stack first, then (only if the binding has grown) the
    /// overflow side list.
    fn try_pop(&self, class: usize) -> Option<usize> {
        let q = &self.queues[class];
        if let Some(idx) = q.free.pop(&self.links) {
            return Some(idx);
        }
        if q.has_overflow.load(Ordering::SeqCst) {
            firefly::meter::note_sharded_lock();
            return q.overflow_free.lock().pop();
        }
        None
    }

    /// Acquires an A-stack of `class` under the given exhaustion policy.
    ///
    /// `grow` allocations need the kernel and the two domains to map the
    /// new overflow region pairwise.
    pub fn acquire(
        &self,
        class: usize,
        policy: AStackPolicy,
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
    ) -> Result<usize, CallError> {
        let result = self.acquire_inner(class, policy, kernel, client, server);
        if let Some(h) = self.rr.get() {
            // The acquire outcome is the nondeterministic part: which
            // index the lock-free CAS race produced (or that the overflow
            // side list was hit), or that the class was exhausted.
            let payload = match &result {
                Ok(idx) => ((*idx as u64 + 1) << 1) | u64::from(*idx >= self.primary_total),
                Err(_) => 0,
            };
            h.emit(replay::kind::ASTACK_ACQUIRE, payload);
        }
        result
    }

    fn acquire_inner(
        &self,
        class: usize,
        policy: AStackPolicy,
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
    ) -> Result<usize, CallError> {
        let q = &self.queues[class];
        let idx = match self.try_pop(class) {
            Some(idx) => idx,
            None => {
                q.stall_events.fetch_add(1, Ordering::Relaxed);
                match policy {
                    AStackPolicy::Fail => return Err(CallError::NoAStacks),
                    AStackPolicy::Wait(timeout) => self.wait_for_free(class, timeout)?,
                    AStackPolicy::Grow => self.grow(class, kernel, client, server),
                }
            }
        };
        let held = q.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        q.peak_in_use.fetch_max(held, Ordering::Relaxed);
        Ok(idx)
    }

    /// Blocks until an A-stack of `class` is released or `timeout`
    /// expires. Waiters are served in FIFO order: each waiter takes a
    /// ticket; only the front ticket polls the free stack, so a release
    /// cannot be snatched by a later arrival while an earlier one sleeps.
    ///
    /// Lossless-wakeup argument: a releaser pushes the index *first*, then
    /// reads the waiter count (both SeqCst). If it reads 0, every future
    /// waiter registers after that read and therefore polls after the
    /// push — the poll finds the index. If it reads > 0, the releaser
    /// takes the wait mutex and notifies; a registered waiter either
    /// already polled and is inside `wait` (the mutex hand-off makes the
    /// notify reach it) or has not yet polled and will find the index.
    fn wait_for_free(&self, class: usize, timeout: Duration) -> Result<usize, CallError> {
        let deadline = std::time::Instant::now() + timeout;
        let q = &self.queues[class];
        firefly::meter::note_sharded_lock();
        let mut st = q.waiters.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        q.waiters.waiting.store(st.queue.len(), Ordering::SeqCst);
        loop {
            if st.queue.front() == Some(&ticket) {
                if let Some(idx) = self.try_pop(class) {
                    st.queue.pop_front();
                    q.waiters.waiting.store(st.queue.len(), Ordering::SeqCst);
                    // The next-in-line waiter may have an index waiting
                    // for it already (multiple releases in a burst).
                    q.waiters.available.notify_all();
                    return Ok(idx);
                }
            }
            if q.waiters
                .available
                .wait_until(&mut st, deadline)
                .timed_out()
            {
                let got = if st.queue.front() == Some(&ticket) {
                    self.try_pop(class)
                } else {
                    None
                };
                st.queue.retain(|t| *t != ticket);
                q.waiters.waiting.store(st.queue.len(), Ordering::SeqCst);
                if got.is_some() {
                    q.waiters.available.notify_all();
                }
                return got.ok_or(CallError::NoAStacks);
            }
        }
    }

    /// Allocates one overflow A-stack for `class` and returns its index.
    ///
    /// "When further allocation is necessary, it is unlikely that space
    /// contiguous to the original A-stacks will be found, but other space
    /// can be used" (Section 5.2).
    pub fn grow(&self, class: usize, kernel: &Kernel, client: &Domain, server: &Domain) -> usize {
        let size = self.classes[class].size.max(1);
        let region = kernel.map_pairwise("astack-overflow", client, server, size);
        firefly::meter::note_sharded_lock();
        let mut overflow = self.overflow.lock();
        let index = self.primary_total + overflow.len();
        overflow.push(OverflowEntry {
            region,
            class,
            linkage: Arc::new(LinkageSlot::new()),
        });
        drop(overflow);
        self.queues[class]
            .has_overflow
            .store(true, Ordering::SeqCst);
        index
    }

    /// The class owning `index`, without constructing an [`AStackRef`].
    fn class_of_index(&self, index: usize) -> Option<usize> {
        if index < self.primary_total {
            self.classes
                .iter()
                .position(|c| index >= c.base_index && index < c.base_index + c.primary_count)
        } else {
            firefly::meter::note_sharded_lock();
            self.overflow
                .lock()
                .get(index - self.primary_total)
                .map(|e| e.class)
        }
    }

    /// Releases an A-stack back to its class's LIFO queue, waking the
    /// longest-blocked waiter if any.
    pub fn release(&self, index: usize) {
        let Some(class) = self.class_of_index(index) else {
            return;
        };
        let q = &self.queues[class];
        let _ = q
            .in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        if index < self.primary_total {
            q.free.push(&self.links, index);
        } else {
            firefly::meter::note_sharded_lock();
            q.overflow_free.lock().push(index);
        }
        if q.waiters.waiting.load(Ordering::SeqCst) > 0 {
            firefly::meter::note_sharded_lock();
            let _st = q.waiters.state.lock();
            q.waiters.available.notify_all();
        }
    }

    /// Resolves an index to its location. Returns `None` for an index that
    /// names no A-stack of this binding.
    pub fn lookup(&self, index: usize) -> Option<AStackRef> {
        if index < self.primary_total {
            // The contiguous layout makes this a range check plus
            // arithmetic — the fast path.
            let class_idx = self
                .classes
                .iter()
                .position(|c| index >= c.base_index && index < c.base_index + c.primary_count)?;
            let c = &self.classes[class_idx];
            Some(AStackRef {
                index,
                class: class_idx,
                region: Arc::clone(&self.primary),
                offset: c.base_offset + (index - c.base_index) * c.size,
                size: c.size,
                overflow: false,
            })
        } else {
            firefly::meter::note_sharded_lock();
            let overflow = self.overflow.lock();
            let e = overflow.get(index - self.primary_total)?;
            Some(AStackRef {
                index,
                class: e.class,
                region: Arc::clone(&e.region),
                offset: 0,
                size: e.region.len(),
                overflow: true,
            })
        }
    }

    /// Call-time validation: the index must name an A-stack of this
    /// binding whose class matches the procedure's ("a simple range check
    /// guarantees their integrity"). Overflow A-stacks are flagged so the
    /// caller can charge the slower validation path.
    pub fn validate(&self, index: usize, expected_class: usize) -> Result<AStackRef, CallError> {
        let r = self.lookup(index).ok_or(CallError::BadAStack)?;
        if r.class != expected_class {
            return Err(CallError::BadAStack);
        }
        Ok(r)
    }

    /// The linkage slot paired with A-stack `index` — "the correct linkage
    /// record can be quickly located given any address in the corresponding
    /// A-stack". Lock-free for primary A-stacks.
    pub fn linkage(&self, index: usize) -> Option<Arc<LinkageSlot>> {
        if index < self.primary_total {
            self.linkages.get(index).cloned()
        } else {
            firefly::meter::note_sharded_lock();
            self.overflow
                .lock()
                .get(index - self.primary_total)
                .map(|e| Arc::clone(&e.linkage))
        }
    }

    /// The primary region (for tests asserting pairwise protection).
    pub fn primary_region(&self) -> &Arc<Region> {
        &self.primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    fn setup() -> (Arc<Kernel>, Arc<Domain>, Arc<Domain>) {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let c = k.create_domain("client");
        let s = k.create_domain("server");
        (k, c, s)
    }

    fn set(k: &Kernel, c: &Domain, s: &Domain, per_proc: &[(usize, u32)]) -> AStackSet {
        AStackSet::allocate(k, c, s, "astacks", per_proc)
    }

    #[test]
    fn same_sized_procedures_share_a_class() {
        let (k, c, s) = setup();
        // Two 12-byte procedures and one 256-byte procedure.
        let set = set(&k, &c, &s, &[(12, 5), (12, 3), (256, 5)]);
        assert_eq!(set.classes().len(), 2);
        assert_eq!(set.class_of_proc(0), set.class_of_proc(1));
        assert_ne!(set.class_of_proc(0), set.class_of_proc(2));
        // The shared class keeps the larger of the two counts.
        assert_eq!(set.classes()[0].primary_count, 5);
        assert_eq!(set.total_count(), 10);
    }

    #[test]
    fn layout_is_contiguous_and_disjoint() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 3), (64, 2)]);
        let refs: Vec<AStackRef> = (0..5).map(|i| set.lookup(i).unwrap()).collect();
        for w in refs.windows(2) {
            assert!(w[0].offset + w[0].size <= w[1].offset + w[1].size);
            assert!(
                w[0].offset + w[0].size <= w[1].offset || w[0].class == w[1].class,
                "A-stacks must not overlap"
            );
        }
        assert_eq!(set.primary_region().len(), 3 * 16 + 2 * 64);
    }

    #[test]
    fn acquire_is_lifo() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 3)]);
        let a = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        set.release(a);
        let b = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        assert_eq!(a, b, "A-stacks are LIFO managed by the client");
    }

    #[test]
    fn exhaustion_policies() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 2)]);
        let _a = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        let _b = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        assert!(matches!(
            set.acquire(0, AStackPolicy::Fail, &k, &c, &s),
            Err(CallError::NoAStacks)
        ));
        assert!(matches!(
            set.acquire(0, AStackPolicy::Wait(Duration::from_millis(10)), &k, &c, &s),
            Err(CallError::NoAStacks)
        ));
        // Growing allocates an overflow A-stack with slower validation.
        let g = set.acquire(0, AStackPolicy::Grow, &k, &c, &s).unwrap();
        let r = set.validate(g, 0).unwrap();
        assert!(r.overflow);
        assert_eq!(set.total_count(), 3);
    }

    #[test]
    fn waiting_client_wakes_on_release() {
        let (k, c, s) = setup();
        let set = Arc::new(set(&k, &c, &s, &[(16, 1)]));
        let held = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        let waiter = {
            let (set, k, c, s) = (
                Arc::clone(&set),
                Arc::clone(&k),
                Arc::clone(&c),
                Arc::clone(&s),
            );
            std::thread::spawn(move || {
                set.acquire(0, AStackPolicy::Wait(Duration::from_secs(5)), &k, &c, &s)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        set.release(held);
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got, held);
    }

    #[test]
    fn validation_rejects_foreign_and_mismatched_stacks() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 2), (64, 2)]);
        assert!(matches!(set.validate(99, 0), Err(CallError::BadAStack)));
        // Index 2 belongs to the 64-byte class, not the 16-byte class.
        assert!(matches!(set.validate(2, 0), Err(CallError::BadAStack)));
        assert!(set.validate(2, 1).is_ok());
    }

    #[test]
    fn linkage_slots_exclude_concurrent_use() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 1)]);
        let slot = set.linkage(0).unwrap();
        assert!(slot.try_claim());
        assert!(!slot.try_claim(), "second claim must fail while in use");
        assert!(slot.is_in_use());
        slot.release();
        assert!(slot.try_claim());
    }

    #[test]
    fn third_party_domain_cannot_touch_astacks() {
        let (k, c, s) = setup();
        let third = k.create_domain("third");
        let set = set(&k, &c, &s, &[(16, 1)]);
        let region = set.primary_region();
        assert!(c.ctx().check(region.id(), true, false).is_ok());
        assert!(s.ctx().check(region.id(), true, false).is_ok());
        assert!(third.ctx().check(region.id(), false, false).is_err());
    }

    #[test]
    fn lockfree_stack_survives_concurrent_churn() {
        let (k, c, s) = setup();
        let set = Arc::new(set(&k, &c, &s, &[(16, 4)]));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let set = Arc::clone(&set);
                let (k, c, s) = (Arc::clone(&k), Arc::clone(&c), Arc::clone(&s));
                scope.spawn(move || {
                    for _ in 0..500 {
                        if let Ok(idx) = set.acquire(0, AStackPolicy::Fail, &k, &c, &s) {
                            std::hint::spin_loop();
                            set.release(idx);
                        }
                    }
                });
            }
        });
        assert_eq!(set.free_count(0), 4, "all A-stacks return to the queue");
        // All four indices are still distinct and acquirable.
        let mut got: Vec<usize> = (0..4)
            .map(|_| set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocked_waiters_are_served_fifo() {
        let (k, c, s) = setup();
        let set = Arc::new(set(&k, &c, &s, &[(16, 1)]));
        let held = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        let n = 4;
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for i in 0..n {
                let set = Arc::clone(&set);
                let order = Arc::clone(&order);
                let (k, c, s) = (Arc::clone(&k), Arc::clone(&c), Arc::clone(&s));
                scope.spawn(move || {
                    // Stagger arrivals so ticket order is deterministic.
                    while set.waiters(0) != i {
                        std::thread::yield_now();
                    }
                    let idx = set
                        .acquire(0, AStackPolicy::Wait(Duration::from_secs(10)), &k, &c, &s)
                        .unwrap();
                    order.lock().push(i);
                    set.release(idx);
                });
            }
            // All four blocked, then a release chain serves them in order.
            while set.waiters(0) != n {
                std::thread::yield_now();
            }
            set.release(held);
        });
        assert_eq!(*order.lock(), vec![0, 1, 2, 3], "FIFO service order");
    }
}
