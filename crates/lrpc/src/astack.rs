//! Argument stacks (A-stacks) and their linkage records.
//!
//! At bind time the kernel "pair-wise allocates in the client and server
//! domains a number of A-stacks equal to the number of simultaneous calls
//! allowed. These A-stacks are mapped read-write and shared by both
//! domains" (Section 3.1). This module implements the bind-time allocation
//! and the call-time disciplines the paper describes:
//!
//! * procedures with equal A-stack sizes share a *class* of A-stacks
//!   ("Procedures in the same interface having A-stacks of similar size can
//!   share A-stacks");
//! * the primary A-stacks of an interface live contiguously in one region
//!   so call-time validation is "a simple range check" (Section 5.2);
//! * each class's free list is a LIFO queue guarded by its own lock
//!   ("Each A-stack queue is guarded by its own lock", Section 3.4);
//! * every A-stack has a kernel-private linkage slot, locatable from the
//!   A-stack by arithmetic, whose `in_use` flag enforces that "no other
//!   thread is currently using that A-stack/linkage pair";
//! * when the pre-allocated A-stacks run out the client can wait or
//!   allocate more; late allocations land in non-contiguous *overflow*
//!   regions that "take slightly more time to validate" (Section 5.2).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use firefly::mem::Region;
use kernel::kernel::Kernel;
use kernel::thread::Linkage;
use kernel::Domain;
use parking_lot::{Condvar, Mutex};

use crate::error::CallError;

/// How A-stack regions are mapped at bind time.
///
/// Section 3.5: "While our implementation demonstrates the performance of
/// this design, the Firefly operating system does not yet support
/// pair-wise shared memory. Our current implementation places A-stacks in
/// globally shared virtual memory. Since mapping is done at bind time, an
/// implementation using pair-wise shared memory would have identical
/// performance, but greater safety."
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AStackMapping {
    /// Mapped read-write into exactly the client and server (the design).
    #[default]
    Pairwise,
    /// Mapped into every existing domain, as the paper's actual Firefly
    /// implementation did — identical performance, weaker safety.
    GloballyShared,
}

/// How `acquire` behaves when every A-stack of a class is in use
/// (Section 5.2: "the client can either wait for one to become available
/// ... or allocate more").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AStackPolicy {
    /// Fail immediately with [`CallError::NoAStacks`].
    Fail,
    /// Block until one is released or the timeout expires.
    Wait(Duration),
    /// Allocate an additional (overflow) A-stack.
    Grow,
}

/// One size class of A-stacks within a binding.
#[derive(Clone, Debug)]
pub struct AStackClass {
    /// Bytes per A-stack.
    pub size: usize,
    /// Primary (contiguous) A-stacks allocated at bind time.
    pub primary_count: usize,
    /// Global index of the first primary A-stack of this class.
    pub base_index: usize,
    /// Byte offset of that A-stack within the primary region.
    pub base_offset: usize,
}

/// Where one A-stack lives.
#[derive(Clone)]
pub struct AStackRef {
    /// Global index within the binding.
    pub index: usize,
    /// Size class.
    pub class: usize,
    /// Backing region (primary, or a private overflow region).
    pub region: Arc<Region>,
    /// Byte offset of the A-stack within the region.
    pub offset: usize,
    /// Bytes available.
    pub size: usize,
    /// True if this is an overflow A-stack (slower validation).
    pub overflow: bool,
}

/// The kernel-private record paired with each A-stack.
pub struct LinkageSlot {
    in_use: AtomicBool,
    record: Mutex<Option<Linkage>>,
}

impl LinkageSlot {
    fn new() -> LinkageSlot {
        LinkageSlot {
            in_use: AtomicBool::new(false),
            record: Mutex::new(None),
        }
    }

    /// Atomically claims the slot; fails if another thread holds it.
    pub fn try_claim(&self) -> bool {
        self.in_use
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Stores the caller's return linkage.
    pub fn set_record(&self, l: Linkage) {
        *self.record.lock() = Some(l);
    }

    /// Reads the stored linkage.
    pub fn record(&self) -> Option<Linkage> {
        *self.record.lock()
    }

    /// Releases the slot at return time.
    pub fn release(&self) {
        *self.record.lock() = None;
        self.in_use.store(false, Ordering::Release);
    }

    /// True while a call is using the pair.
    pub fn is_in_use(&self) -> bool {
        self.in_use.load(Ordering::Acquire)
    }
}

struct ClassQueue {
    free: Mutex<Vec<usize>>,
    available: Condvar,
}

struct OverflowEntry {
    region: Arc<Region>,
    class: usize,
}

/// All A-stacks of one binding.
pub struct AStackSet {
    primary: Arc<Region>,
    classes: Vec<AStackClass>,
    /// Procedure index → class index.
    proc_class: Vec<usize>,
    queues: Vec<ClassQueue>,
    linkages: Mutex<Vec<Arc<LinkageSlot>>>,
    overflow: Mutex<Vec<OverflowEntry>>,
    primary_total: usize,
}

impl AStackSet {
    /// Performs the bind-time allocation for an interface: groups
    /// procedures into size classes, allocates the primary A-stacks
    /// contiguously in one pairwise-mapped region, and creates a linkage
    /// slot per A-stack.
    ///
    /// `per_proc` gives, per procedure, its A-stack size and simultaneous
    /// call count (from the PDL).
    pub fn allocate(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        per_proc: &[(usize, u32)],
    ) -> AStackSet {
        AStackSet::allocate_mapped(
            kernel,
            client,
            server,
            label,
            per_proc,
            AStackMapping::Pairwise,
        )
    }

    /// Like [`AStackSet::allocate`] with an explicit mapping mode.
    pub fn allocate_mapped(
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
        label: &str,
        per_proc: &[(usize, u32)],
        mapping: AStackMapping,
    ) -> AStackSet {
        // Group by exact size; the shared pool of a class gets the largest
        // count any member asked for (sharing bounds simultaneous calls by
        // the total number of shared A-stacks — a soft limit).
        let mut classes: Vec<AStackClass> = Vec::new();
        let mut proc_class = Vec::with_capacity(per_proc.len());
        for &(size, count) in per_proc {
            match classes.iter().position(|c| c.size == size) {
                Some(ci) => {
                    classes[ci].primary_count = classes[ci].primary_count.max(count as usize);
                    proc_class.push(ci);
                }
                None => {
                    classes.push(AStackClass {
                        size,
                        primary_count: count as usize,
                        base_index: 0,
                        base_offset: 0,
                    });
                    proc_class.push(classes.len() - 1);
                }
            }
        }

        // Lay the classes out contiguously.
        let mut index = 0;
        let mut offset = 0;
        for c in &mut classes {
            c.base_index = index;
            c.base_offset = offset;
            index += c.primary_count;
            offset += c.primary_count * c.size;
        }
        let primary_total = index;
        let primary = kernel.map_pairwise(label, client, server, offset.max(1));
        if mapping == AStackMapping::GloballyShared {
            // The Firefly fallback: every existing domain gets the mapping.
            for d in kernel.domains() {
                d.ctx()
                    .map(primary.id(), firefly::vm::Protection::ReadWrite);
            }
        }

        let queues = classes
            .iter()
            .map(|c| ClassQueue {
                free: Mutex::new(
                    (c.base_index..c.base_index + c.primary_count)
                        .rev()
                        .collect(),
                ),
                available: Condvar::new(),
            })
            .collect();
        let linkages = (0..primary_total)
            .map(|_| Arc::new(LinkageSlot::new()))
            .collect();

        AStackSet {
            primary,
            classes,
            proc_class,
            queues,
            linkages: Mutex::new(linkages),
            overflow: Mutex::new(Vec::new()),
            primary_total,
        }
    }

    /// The size class used by procedure `proc_index`.
    ///
    /// # Panics
    ///
    /// Panics if the procedure index is out of range; callers validate the
    /// procedure identifier first.
    pub fn class_of_proc(&self, proc_index: usize) -> usize {
        self.proc_class[proc_index]
    }

    /// The classes of this set.
    pub fn classes(&self) -> &[AStackClass] {
        &self.classes
    }

    /// Total A-stacks (primary + overflow).
    pub fn total_count(&self) -> usize {
        self.primary_total + self.overflow.lock().len()
    }

    /// Number of currently free A-stacks in a class.
    pub fn free_count(&self, class: usize) -> usize {
        self.queues[class].free.lock().len()
    }

    /// Acquires an A-stack of `class` under the given exhaustion policy.
    ///
    /// `grow` allocations need the kernel and the two domains to map the
    /// new overflow region pairwise.
    pub fn acquire(
        &self,
        class: usize,
        policy: AStackPolicy,
        kernel: &Kernel,
        client: &Domain,
        server: &Domain,
    ) -> Result<usize, CallError> {
        let queue = &self.queues[class];
        let mut free = queue.free.lock();
        if let Some(idx) = free.pop() {
            return Ok(idx);
        }
        match policy {
            AStackPolicy::Fail => Err(CallError::NoAStacks),
            AStackPolicy::Wait(timeout) => {
                let deadline = std::time::Instant::now() + timeout;
                loop {
                    if let Some(idx) = free.pop() {
                        return Ok(idx);
                    }
                    if queue.available.wait_until(&mut free, deadline).timed_out() {
                        return free.pop().ok_or(CallError::NoAStacks);
                    }
                }
            }
            AStackPolicy::Grow => {
                drop(free);
                Ok(self.grow(class, kernel, client, server))
            }
        }
    }

    /// Allocates one overflow A-stack for `class` and returns its index.
    ///
    /// "When further allocation is necessary, it is unlikely that space
    /// contiguous to the original A-stacks will be found, but other space
    /// can be used" (Section 5.2).
    pub fn grow(&self, class: usize, kernel: &Kernel, client: &Domain, server: &Domain) -> usize {
        let size = self.classes[class].size.max(1);
        let region = kernel.map_pairwise("astack-overflow", client, server, size);
        let mut overflow = self.overflow.lock();
        let index = self.primary_total + overflow.len();
        overflow.push(OverflowEntry { region, class });
        self.linkages.lock().push(Arc::new(LinkageSlot::new()));
        index
    }

    /// Releases an A-stack back to its class's LIFO queue.
    pub fn release(&self, index: usize) {
        if let Some(r) = self.lookup(index) {
            let queue = &self.queues[r.class];
            queue.free.lock().push(index);
            queue.available.notify_one();
        }
    }

    /// Resolves an index to its location. Returns `None` for an index that
    /// names no A-stack of this binding.
    pub fn lookup(&self, index: usize) -> Option<AStackRef> {
        if index < self.primary_total {
            // The contiguous layout makes this a range check plus
            // arithmetic — the fast path.
            let class_idx = self
                .classes
                .iter()
                .position(|c| index >= c.base_index && index < c.base_index + c.primary_count)?;
            let c = &self.classes[class_idx];
            Some(AStackRef {
                index,
                class: class_idx,
                region: Arc::clone(&self.primary),
                offset: c.base_offset + (index - c.base_index) * c.size,
                size: c.size,
                overflow: false,
            })
        } else {
            let overflow = self.overflow.lock();
            let e = overflow.get(index - self.primary_total)?;
            Some(AStackRef {
                index,
                class: e.class,
                region: Arc::clone(&e.region),
                offset: 0,
                size: e.region.len(),
                overflow: true,
            })
        }
    }

    /// Call-time validation: the index must name an A-stack of this
    /// binding whose class matches the procedure's ("a simple range check
    /// guarantees their integrity"). Overflow A-stacks are flagged so the
    /// caller can charge the slower validation path.
    pub fn validate(&self, index: usize, expected_class: usize) -> Result<AStackRef, CallError> {
        let r = self.lookup(index).ok_or(CallError::BadAStack)?;
        if r.class != expected_class {
            return Err(CallError::BadAStack);
        }
        Ok(r)
    }

    /// The linkage slot paired with A-stack `index` — "the correct linkage
    /// record can be quickly located given any address in the corresponding
    /// A-stack".
    pub fn linkage(&self, index: usize) -> Option<Arc<LinkageSlot>> {
        self.linkages.lock().get(index).cloned()
    }

    /// The primary region (for tests asserting pairwise protection).
    pub fn primary_region(&self) -> &Arc<Region> {
        &self.primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    fn setup() -> (Arc<Kernel>, Arc<Domain>, Arc<Domain>) {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let c = k.create_domain("client");
        let s = k.create_domain("server");
        (k, c, s)
    }

    fn set(k: &Kernel, c: &Domain, s: &Domain, per_proc: &[(usize, u32)]) -> AStackSet {
        AStackSet::allocate(k, c, s, "astacks", per_proc)
    }

    #[test]
    fn same_sized_procedures_share_a_class() {
        let (k, c, s) = setup();
        // Two 12-byte procedures and one 256-byte procedure.
        let set = set(&k, &c, &s, &[(12, 5), (12, 3), (256, 5)]);
        assert_eq!(set.classes().len(), 2);
        assert_eq!(set.class_of_proc(0), set.class_of_proc(1));
        assert_ne!(set.class_of_proc(0), set.class_of_proc(2));
        // The shared class keeps the larger of the two counts.
        assert_eq!(set.classes()[0].primary_count, 5);
        assert_eq!(set.total_count(), 10);
    }

    #[test]
    fn layout_is_contiguous_and_disjoint() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 3), (64, 2)]);
        let refs: Vec<AStackRef> = (0..5).map(|i| set.lookup(i).unwrap()).collect();
        for w in refs.windows(2) {
            assert!(w[0].offset + w[0].size <= w[1].offset + w[1].size);
            assert!(
                w[0].offset + w[0].size <= w[1].offset || w[0].class == w[1].class,
                "A-stacks must not overlap"
            );
        }
        assert_eq!(set.primary_region().len(), 3 * 16 + 2 * 64);
    }

    #[test]
    fn acquire_is_lifo() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 3)]);
        let a = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        set.release(a);
        let b = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        assert_eq!(a, b, "A-stacks are LIFO managed by the client");
    }

    #[test]
    fn exhaustion_policies() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 2)]);
        let _a = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        let _b = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        assert!(matches!(
            set.acquire(0, AStackPolicy::Fail, &k, &c, &s),
            Err(CallError::NoAStacks)
        ));
        assert!(matches!(
            set.acquire(0, AStackPolicy::Wait(Duration::from_millis(10)), &k, &c, &s),
            Err(CallError::NoAStacks)
        ));
        // Growing allocates an overflow A-stack with slower validation.
        let g = set.acquire(0, AStackPolicy::Grow, &k, &c, &s).unwrap();
        let r = set.validate(g, 0).unwrap();
        assert!(r.overflow);
        assert_eq!(set.total_count(), 3);
    }

    #[test]
    fn waiting_client_wakes_on_release() {
        let (k, c, s) = setup();
        let set = Arc::new(set(&k, &c, &s, &[(16, 1)]));
        let held = set.acquire(0, AStackPolicy::Fail, &k, &c, &s).unwrap();
        let waiter = {
            let (set, k, c, s) = (
                Arc::clone(&set),
                Arc::clone(&k),
                Arc::clone(&c),
                Arc::clone(&s),
            );
            std::thread::spawn(move || {
                set.acquire(0, AStackPolicy::Wait(Duration::from_secs(5)), &k, &c, &s)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        set.release(held);
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got, held);
    }

    #[test]
    fn validation_rejects_foreign_and_mismatched_stacks() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 2), (64, 2)]);
        assert!(matches!(set.validate(99, 0), Err(CallError::BadAStack)));
        // Index 2 belongs to the 64-byte class, not the 16-byte class.
        assert!(matches!(set.validate(2, 0), Err(CallError::BadAStack)));
        assert!(set.validate(2, 1).is_ok());
    }

    #[test]
    fn linkage_slots_exclude_concurrent_use() {
        let (k, c, s) = setup();
        let set = set(&k, &c, &s, &[(16, 1)]);
        let slot = set.linkage(0).unwrap();
        assert!(slot.try_claim());
        assert!(!slot.try_claim(), "second claim must fail while in use");
        assert!(slot.is_in_use());
        slot.release();
        assert!(slot.try_claim());
    }

    #[test]
    fn third_party_domain_cannot_touch_astacks() {
        let (k, c, s) = setup();
        let third = k.create_domain("third");
        let set = set(&k, &c, &s, &[(16, 1)]);
        let region = set.primary_region();
        assert!(c.ctx().check(region.id(), true, false).is_ok());
        assert!(s.ctx().check(region.id(), true, false).is_ok());
        assert!(third.ctx().check(region.id(), false, false).is_err());
    }
}
