//! Lightweight Remote Procedure Call.
//!
//! A from-scratch Rust reproduction of *Lightweight Remote Procedure Call*
//! (Bershad, Anderson, Lazowska, Levy — SOSP 1989): a communication
//! facility for protection domains on the same machine that combines the
//! control-transfer model of capability systems (the client's thread runs
//! the server's procedure) with the programming semantics of RPC.
//!
//! The four techniques of the paper map to these modules:
//!
//! * **Simple control transfer** — [`call`]: kernel-validated direct
//!   transfer of the client's thread into the server domain, linkage
//!   records on the thread control block.
//! * **Simple data transfer** — [`astack`]: pairwise-mapped, contiguously
//!   allocated argument stacks with LIFO free queues; arguments are copied
//!   once, from the client stub straight onto the shared A-stack.
//! * **Simple stubs** — the `idl` crate's generated stub programs,
//!   interpreted against A-stack frames.
//! * **Design for concurrency** — lock-free per-class A-stack free lists
//!   (no process-global lock anywhere on the call path), and the
//!   idle-processor domain-caching optimization.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use firefly::cpu::Machine;
//! use idl::wire::Value;
//! use kernel::kernel::Kernel;
//! use lrpc::{Handler, LrpcRuntime, Reply};
//!
//! let kernel = Kernel::new(Machine::cvax_firefly());
//! let rt = LrpcRuntime::new(kernel);
//!
//! let server = rt.kernel().create_domain("adder");
//! rt.export(
//!     &server,
//!     "interface Math { procedure Add(a: int32, b: int32) -> int32; }",
//!     vec![Box::new(|_ctx: &lrpc::ServerCtx, args: &[Value]| {
//!         let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
//!             unreachable!("stubs decoded the declared types");
//!         };
//!         Ok(Reply::value(Value::Int32(a + b)))
//!     }) as Handler],
//! )
//! .expect("export succeeds");
//!
//! let client = rt.kernel().create_domain("app");
//! let thread = rt.kernel().spawn_thread(&client);
//! let binding = rt.import(&client, "Math").expect("import succeeds");
//! let outcome = binding.call(0, &thread, "Add", &[Value::Int32(2), Value::Int32(3)]).unwrap();
//! assert_eq!(outcome.ret, Some(Value::Int32(5)));
//! ```

pub mod adapt;
pub mod astack;
pub mod binding;
pub mod bulk;
pub mod call;
pub mod error;
pub mod estack;
pub mod recover;
pub mod remote;
pub mod ring;
pub mod runtime;
pub mod touch;
pub mod typed;

pub use adapt::{AdaptConfig, AdaptPlan, ClassSnapshot, Recommendation};
pub use astack::{AStackMapping, AStackPolicy, AStackSet, LinkageSlot};
pub use binding::{Binding, BindingState, BindingStats, Clerk, Handler, Reply, ServerCtx};
pub use bulk::{BulkArena, BulkChunk};
pub use call::{CallOutcome, ASTACK_QUEUE_LOCK, OOB_SEGMENT_COST};
pub use error::CallError;
pub use estack::{EStackPool, EStackStats};
pub use recover::{
    BreakerConfig, BreakerState, CircuitBreaker, RecoveryConfig, ResilientClient, RetryPolicy,
};
pub use remote::{RemoteReply, RemoteTransport};
pub use ring::{block_on, BatchOutcome, BatchSummary, CallFuture, CallRing, RingBatch, RING_SLOTS};
pub use runtime::{LrpcRuntime, RuntimeConfig, TestRuntime};
pub use touch::TouchPlan;
pub use typed::{IntoValue, TypedCall, TypedOutcome};
