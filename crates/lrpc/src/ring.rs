//! Pairwise submission/completion call rings: doorbell-batched LRPC.
//!
//! The paper's call path pays two kernel traps per call. For workloads
//! that issue many small calls, the trap (and the two context switches
//! around the server visit) dominates. This module amortizes them
//! io_uring style: a lock-free SPSC **submission ring** on a
//! pairwise-shared region where the client enqueues many call
//! descriptors, a **doorbell** rung once per batch (one trap, and
//! consecutive rings coalesce while the server has not drained), and a
//! paired **completion ring** the server posts results into.
//!
//! The per-call work — stub marshaling through the A-stack, linkage and
//! Binding-Object validation, E-stack association, dispatch, result
//! fetch — is *identical* to the serial path in [`crate::call`], charged
//! to each call's own meter. Only the per-crossing costs (traps, kernel
//! transfer, context switches) move onto the batch meter, paid once per
//! doorbell instead of once per call. Three ring-descriptor queue
//! operations per call (enqueue, drain, completion reap) are the price
//! of admission, also on the batch meter.
//!
//! Ring decisions (enqueue slot, doorbell outcome, drain order) flow
//! through the binding's `ring:{interface}` record/replay stream, so a
//! recorded batched run replays bit-identically.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use firefly::cost::CostModel;
use firefly::cpu::{Cpu, Machine};
use firefly::mem::Region;
use firefly::meter::{Meter, Phase, TraceId};
use firefly::time::Nanos;
use firefly::vm::VmContext;
use idl::copyops::{CopyLog, CopyOp};
use idl::plan::ArgVec;
use idl::stubvm::{needs_server_copy, OobStore, StubVm};
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::objects::RawHandle;
use kernel::sched::Doorbell;
use kernel::thread::{Linkage, ReturnPath, Thread};
use kernel::Domain;

use crate::astack::LinkageSlot;
use crate::binding::{Binding, BindingState, Reply, ServerCtx};
use crate::call::{
    charge, charge_locked, lrpc_call, touch_set, AStackFrame, CallGuard, CallOutcome, OobTransport,
    ASTACK_QUEUE_LOCK, ESTACK_ALLOC_COST, OOB_SEGMENT_COST, OVERFLOW_VALIDATION_COST,
};
use crate::error::CallError;
use crate::runtime::LrpcRuntime;

/// Submission (and completion) slots per ring. Batches larger than this
/// simply flush mid-way — the ring is a window, not a limit.
pub const RING_SLOTS: u32 = 64;

/// Bytes per descriptor: `[proc | astack | seq | magic]`, four u32s.
const DESC_BYTES: usize = 16;

/// Magic stamped into submission descriptors.
const DESC_MAGIC: u32 = 0xBE11_CA11;

/// Magic stamped into completion descriptors.
const COMP_MAGIC: u32 = 0xD04E_F14E;

/// A pairwise submission/completion ring for one binding.
///
/// Single-producer (the client thread filling a batch), single-consumer
/// (the server drain per doorbell). `head`/`tail` index the submission
/// half; the completion half is slot-addressed — completion `i` answers
/// submission slot `i`, matched by sequence number.
pub struct CallRing {
    name: String,
    region: Arc<Region>,
    slots: u32,
    /// Next submission slot the server will drain.
    head: AtomicU32,
    /// Next submission slot the client will fill.
    tail: AtomicU32,
    doorbell: Doorbell,
    /// `lrpc_ring_occupancy:{interface}` — live submission-ring depth.
    occupancy: obs::Gauge,
    /// `lrpc_doorbells_total` — doorbells that actually trapped.
    doorbells_total: obs::Counter,
    /// Record/replay stream for ring decisions (`ring:{interface}`).
    rr: OnceLock<replay::Handle>,
}

/// One drained submission descriptor.
pub(crate) struct RingDescriptor {
    pub(crate) slot: u32,
    pub(crate) proc_index: usize,
    pub(crate) astack_idx: usize,
    pub(crate) seq: u32,
}

impl CallRing {
    /// Maps the ring region pairwise into both domains and wires the
    /// metrics instruments. Called by the runtime at import time.
    pub fn new(
        kernel: &Arc<Kernel>,
        client: &Arc<Domain>,
        server: &Arc<Domain>,
        name: &str,
        occupancy: obs::Gauge,
        doorbells_total: obs::Counter,
    ) -> CallRing {
        CallRing::with_slots(
            kernel,
            client,
            server,
            name,
            occupancy,
            doorbells_total,
            RING_SLOTS,
        )
    }

    /// Like [`CallRing::new`] with an explicit depth — the adaptive sizing
    /// controller's ring-depth recommendations land here.
    pub fn with_slots(
        kernel: &Arc<Kernel>,
        client: &Arc<Domain>,
        server: &Arc<Domain>,
        name: &str,
        occupancy: obs::Gauge,
        doorbells_total: obs::Counter,
        slots: u32,
    ) -> CallRing {
        let slots = slots.max(1);
        let region = kernel.map_pairwise(
            format!("call-ring:{name}"),
            client,
            server,
            slots as usize * 2 * DESC_BYTES,
        );
        CallRing {
            name: name.to_string(),
            region,
            slots,
            head: AtomicU32::new(0),
            tail: AtomicU32::new(0),
            doorbell: Doorbell::new(),
            occupancy,
            doorbells_total,
            rr: OnceLock::new(),
        }
    }

    /// Attaches a record/replay session: enqueue slots, doorbell outcomes
    /// and drain order flow through the `ring:{name}` stream. Live
    /// sessions are ignored; a second attach is ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() {
            return;
        }
        let _ = self.rr.set(session.stream(&format!("ring:{}", self.name)));
    }

    fn emit(&self, kind: u16, payload: u64) {
        if let Some(h) = self.rr.get() {
            h.emit(kind, payload);
        }
    }

    /// The ring's interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submission capacity.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Entries currently enqueued and not yet drained.
    pub fn occupancy_now(&self) -> u32 {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// True when no submission slot is free.
    pub fn is_full(&self) -> bool {
        self.occupancy_now() >= self.slots
    }

    /// True when nothing is enqueued.
    pub fn is_empty(&self) -> bool {
        self.occupancy_now() == 0
    }

    /// The client's doorbell.
    pub fn doorbell(&self) -> &Doorbell {
        &self.doorbell
    }

    /// The shared `lrpc_doorbells_total` counter.
    pub(crate) fn doorbells_total(&self) -> &obs::Counter {
        &self.doorbells_total
    }

    /// Consumes the pending doorbell on the server side.
    pub(crate) fn take_doorbell(&self) -> bool {
        self.doorbell.take()
    }

    /// Drops every enqueued descriptor (crossing-level abort).
    pub(crate) fn reset(&self) {
        let tail = self.tail.load(Ordering::Acquire);
        self.head.store(tail, Ordering::Release);
        self.occupancy.set(0);
        self.doorbell.take();
    }

    /// Client side: writes one call descriptor into the next free slot.
    pub(crate) fn enqueue(
        &self,
        cpu: &Cpu,
        ctx: &VmContext,
        proc_index: usize,
        astack_idx: usize,
        seq: u32,
    ) -> Result<u32, CallError> {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots {
            // Callers check `is_full` and flush first; hitting this is a
            // batching bug, surfaced as a failed call rather than a panic.
            return Err(CallError::CallFailed);
        }
        let slot = tail % self.slots;
        ctx.check(self.region.id(), true, false)
            .map_err(CallError::Mem)?;
        let mut desc = [0u8; DESC_BYTES];
        desc[..4].copy_from_slice(&(proc_index as u32).to_le_bytes());
        desc[4..8].copy_from_slice(&(astack_idx as u32).to_le_bytes());
        desc[8..12].copy_from_slice(&seq.to_le_bytes());
        desc[12..].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        self.region
            .write_raw(slot as usize * DESC_BYTES, &desc)
            .map_err(CallError::Mem)?;
        let mut scratch = Meter::disabled();
        cpu.touch_pages(
            self.region
                .pages_for(slot as usize * DESC_BYTES, DESC_BYTES),
            &mut scratch,
        );
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        self.occupancy.set(self.occupancy_now() as i64);
        self.emit(
            replay::kind::RING_ENQUEUE,
            (u64::from(slot) << 32) | proc_index as u64,
        );
        Ok(slot)
    }

    /// Server side: pops the next descriptor, or `None` when drained dry.
    pub(crate) fn drain(
        &self,
        cpu: &Cpu,
        server_ctx: &VmContext,
    ) -> Result<Option<RingDescriptor>, CallError> {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return Ok(None);
        }
        let slot = head % self.slots;
        server_ctx
            .check(self.region.id(), false, false)
            .map_err(CallError::Mem)?;
        let desc = self
            .region
            .read_vec(slot as usize * DESC_BYTES, DESC_BYTES)
            .map_err(CallError::Mem)?;
        let magic = u32::from_le_bytes([desc[12], desc[13], desc[14], desc[15]]);
        if magic != DESC_MAGIC {
            return Err(CallError::CallFailed);
        }
        let mut scratch = Meter::disabled();
        cpu.touch_pages(
            self.region
                .pages_for(slot as usize * DESC_BYTES, DESC_BYTES),
            &mut scratch,
        );
        let proc_index = u32::from_le_bytes([desc[0], desc[1], desc[2], desc[3]]) as usize;
        let astack_idx = u32::from_le_bytes([desc[4], desc[5], desc[6], desc[7]]) as usize;
        let seq = u32::from_le_bytes([desc[8], desc[9], desc[10], desc[11]]);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        self.occupancy.set(self.occupancy_now() as i64);
        self.emit(
            replay::kind::RING_DRAIN,
            (u64::from(slot) << 32) | proc_index as u64,
        );
        Ok(Some(RingDescriptor {
            slot,
            proc_index,
            astack_idx,
            seq,
        }))
    }

    /// Server side: posts the completion for submission slot `slot`.
    pub(crate) fn post_completion(
        &self,
        cpu: &Cpu,
        ctx: &VmContext,
        slot: u32,
        seq: u32,
        status: u32,
    ) -> Result<(), CallError> {
        ctx.check(self.region.id(), true, false)
            .map_err(CallError::Mem)?;
        let off = (self.slots + slot) as usize * DESC_BYTES;
        let mut desc = [0u8; DESC_BYTES];
        desc[..4].copy_from_slice(&status.to_le_bytes());
        desc[8..12].copy_from_slice(&seq.to_le_bytes());
        desc[12..].copy_from_slice(&COMP_MAGIC.to_le_bytes());
        self.region.write_raw(off, &desc).map_err(CallError::Mem)?;
        let mut scratch = Meter::disabled();
        cpu.touch_pages(self.region.pages_for(off, DESC_BYTES), &mut scratch);
        Ok(())
    }

    /// Client side: reads back the completion for `slot`, returning its
    /// status word. The sequence number must match the submission.
    pub(crate) fn reap(
        &self,
        cpu: &Cpu,
        ctx: &VmContext,
        slot: u32,
        seq: u32,
    ) -> Result<u32, CallError> {
        ctx.check(self.region.id(), false, false)
            .map_err(CallError::Mem)?;
        let off = (self.slots + slot) as usize * DESC_BYTES;
        let desc = self
            .region
            .read_vec(off, DESC_BYTES)
            .map_err(CallError::Mem)?;
        let magic = u32::from_le_bytes([desc[12], desc[13], desc[14], desc[15]]);
        let got_seq = u32::from_le_bytes([desc[8], desc[9], desc[10], desc[11]]);
        if magic != COMP_MAGIC || got_seq != seq {
            return Err(CallError::CallFailed);
        }
        let mut scratch = Meter::disabled();
        cpu.touch_pages(self.region.pages_for(off, DESC_BYTES), &mut scratch);
        Ok(u32::from_le_bytes([desc[0], desc[1], desc[2], desc[3]]))
    }
}

/// What a whole batch reports.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, in request order. Each carries the same
    /// per-call meter/copy-log a serial call would, minus the amortized
    /// crossing phases.
    pub results: Vec<Result<CallOutcome, CallError>>,
    /// The crossing costs shared by the batch: traps, kernel transfers,
    /// context switches and ring-descriptor queue ops.
    pub batch_meter: Meter,
    /// Doorbells that actually trapped (lost doorbells count twice).
    pub doorbells: u64,
    /// Kernel traps paid by the whole batch.
    pub traps: u64,
    /// Calls that degraded to the serial single-call trap path (ring
    /// presented as full by fault injection, or no ring on the binding).
    pub degraded: u64,
    /// Virtual time the batch took on the calling thread.
    pub elapsed: Nanos,
    /// The CPU the thread ended on.
    pub end_cpu: usize,
}

/// A compact summary of a submitted [`RingBatch`].
#[derive(Debug)]
pub struct BatchSummary {
    /// Calls submitted.
    pub calls: usize,
    /// Calls that completed successfully.
    pub ok: usize,
    /// Calls that raised an exception.
    pub failed: usize,
    /// Doorbells that actually trapped.
    pub doorbells: u64,
    /// Kernel traps paid by the whole batch.
    pub traps: u64,
    /// Calls that degraded to the serial path.
    pub degraded: u64,
    /// The batch-shared crossing meter.
    pub batch_meter: Meter,
    /// Virtual time the batch took.
    pub elapsed: Nanos,
}

/// Materializes a per-call error from a batch-level one. [`CallError`]
/// holds non-`Clone` payloads ([`idl::stubvm::StubError`] etc.), so
/// batch-wide aborts reproduce the variant rather than the payload.
fn clone_err(e: &CallError) -> CallError {
    match e {
        CallError::InvalidBinding(h) => CallError::InvalidBinding(*h),
        CallError::BindingRevoked => CallError::BindingRevoked,
        CallError::BadProcedure { index } => CallError::BadProcedure { index: *index },
        CallError::BadAStack => CallError::BadAStack,
        CallError::AStackBusy => CallError::AStackBusy,
        CallError::NoAStacks => CallError::NoAStacks,
        CallError::CallAborted => CallError::CallAborted,
        CallError::DomainDead => CallError::DomainDead,
        _ => CallError::CallFailed,
    }
}

/// Everything the batch engine threads through its helpers.
struct BatchEnv<'a> {
    rt: &'a Arc<LrpcRuntime>,
    machine: &'a Arc<Machine>,
    cost: CostModel,
    state: &'a Arc<BindingState>,
    ring: &'a CallRing,
    cpu: &'a Cpu,
    thread: &'a Arc<Thread>,
    handle: RawHandle,
    metered: bool,
    fault: Option<Arc<firefly::fault::FaultPlan>>,
    doorbell_site: String,
}

/// One enqueued-but-not-completed call: everything the drain and reap
/// halves need, owned across the crossing.
struct PendingCall {
    /// Position in the request (and results) vector.
    index: usize,
    proc_index: usize,
    class: usize,
    astack_idx: usize,
    slot: u32,
    seq: u32,
    start: Nanos,
    trace: TraceId,
    meter: Meter,
    copies: CopyLog,
    /// Out-of-band store: in-direction segments from the client push,
    /// out-direction segments appended by the server place.
    oob: OobStore,
    transport: Option<OobTransport>,
    bulk_chunk: Option<usize>,
    oob_region: Option<Arc<Region>>,
    linkage_slot: Option<Arc<LinkageSlot>>,
    estack_key: Option<u64>,
    reply: Option<Reply>,
    error: Option<CallError>,
}

/// Releases everything a failed pending call still holds.
fn release_resources(env: &BatchEnv<'_>, pc: &mut PendingCall) {
    if let Some(slot) = pc.linkage_slot.take() {
        slot.release();
    }
    if let Some(key) = pc.estack_key.take() {
        env.state.estack_pool.end_call(key);
    }
    if let Some(chunk) = pc.bulk_chunk.take() {
        if let Some(arena) = &env.state.bulk {
            arena.release(chunk);
        }
    }
    if let Some(region) = pc.oob_region.take() {
        env.state.client.ctx().unmap(region.id());
        env.state.server.ctx().unmap(region.id());
        env.machine.mem().free(region.id());
    }
    env.state.astacks.release(pc.astack_idx);
}

/// Client half of one batched call: stub marshal onto a fresh A-stack,
/// out-of-band setup, and the ring-descriptor enqueue. Mirrors the serial
/// path byte for byte; per-call costs go on the call's own meter, the
/// ring op on the batch meter.
fn enqueue_one(
    env: &BatchEnv<'_>,
    batch_meter: &mut Meter,
    index: usize,
    proc_index: usize,
    args: &[Value],
    seq: u32,
) -> Result<PendingCall, CallError> {
    let cpu = env.cpu;
    let cost = &env.cost;
    let state = env.state;
    let mut meter = if env.metered {
        Meter::enabled()
    } else {
        Meter::disabled()
    };
    let trace = TraceId::next();
    meter.set_trace(trace);
    let mut copies = CopyLog::new();
    let start = cpu.now();

    charge(
        cpu,
        &mut meter,
        Phase::ProcedureCall,
        cost.hw.procedure_call,
    );

    let proc = state
        .interface
        .procs
        .get(proc_index)
        .ok_or(CallError::BadProcedure { index: proc_index })?;
    let plan = &state.plans.procs[proc_index];
    let client_ctx = state.client.ctx();

    // First call of the batch loads the client context; later calls find
    // it already loaded and this is free. Crossing cost → batch meter.
    cpu.switch_context(client_ctx.id(), cost, batch_meter);

    charge(cpu, &mut meter, Phase::ClientStub, cost.client_stub_call);
    touch_set(cpu, state.touch.client_call().iter().copied(), &mut meter);

    let class = state.astacks.class_of_proc(proc_index);
    let astack_idx = state.astacks.acquire(
        class,
        env.rt.config().astack_policy,
        env.rt.kernel(),
        &state.client,
        &state.server,
    )?;
    charge_locked(
        cpu,
        &mut meter,
        Phase::QueueOp,
        cost.astack_queue_op,
        ASTACK_QUEUE_LOCK,
    );

    let mut guard = CallGuard {
        state,
        thread: env.thread,
        machine: env.machine,
        astack: Some(astack_idx),
        slot: None,
        pool: None,
        bulk_chunk: None,
        oob_region: None,
        linkage_pushed: false,
    };

    let aref = state
        .astacks
        .lookup(astack_idx)
        .ok_or(CallError::BadAStack)?;
    touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut meter);

    // Copy A of Table 3: push the arguments onto the shared A-stack.
    let mut oob = OobStore::new();
    {
        let mut frame = AStackFrame::new(cpu, client_ctx, &aref.region, aref.offset, aref.size);
        let mut vm = StubVm::new(cost, cpu, &mut meter);
        match &plan.push {
            Some(p) => p.execute(proc, args, &mut frame, &mut vm)?,
            None => vm.client_push_args(proc, args, &mut frame, &mut oob)?,
        }
        let misses = frame.misses();
        meter.add_tlb_misses(misses);
    }
    if env.metered {
        for (slot_l, p) in proc.layout.params.iter().zip(&proc.def.params) {
            if p.dir.is_in() {
                copies.record(CopyOp::A, slot_l.size);
            }
        }
    }

    // Out-of-band transport, exactly as the serial path: bulk-arena chunk
    // in steady state, per-call pairwise segment as the fallback.
    let transport = if oob.is_empty() {
        None
    } else {
        let total: usize = oob.iter().map(|s| s.len() + 8).sum();
        state.stats.observe_bulk_bytes(total as u64);
        let exhausted = matches!(&env.fault, Some(plan) if plan.exhaust_bulk("call:bulk"));
        let chunk = if exhausted {
            None
        } else {
            state.bulk.as_ref().and_then(|a| a.acquire(total))
        };
        let (region, base) = match chunk {
            Some(c) => {
                guard.bulk_chunk = Some(c.index);
                let arena = state.bulk.as_ref().expect("chunk implies arena");
                (Arc::clone(arena.region()), c.offset)
            }
            None => {
                state.stats.note_bulk_fallback();
                charge(cpu, &mut meter, Phase::OobSegment, OOB_SEGMENT_COST);
                let region = env.rt.kernel().map_pairwise(
                    "oob-segment",
                    &state.client,
                    &state.server,
                    total.max(8),
                );
                guard.oob_region = Some(Arc::clone(&region));
                (region, 0)
            }
        };
        let mut off = base;
        let mut scratch = Meter::disabled();
        for seg in &oob {
            let mut hdr = [0u8; 8];
            hdr[..4].copy_from_slice(&(seg.len() as u32).to_le_bytes());
            region.write_raw(off, &hdr).map_err(CallError::Mem)?;
            region.write_raw(off + 8, seg).map_err(CallError::Mem)?;
            cpu.touch_pages(region.pages_for(off, seg.len() + 8), &mut scratch);
            off += seg.len() + 8;
        }
        Some(OobTransport { region, base })
    };

    // The descriptor write replaces the serial path's register setup +
    // trap: one ring-descriptor queue op on the batch meter.
    let slot = env
        .ring
        .enqueue(cpu, client_ctx, proc_index, astack_idx, seq)?;
    charge(cpu, batch_meter, Phase::QueueOp, cost.ring_descriptor_op);

    let bulk_chunk = guard.bulk_chunk.take();
    let oob_region = guard.oob_region.take();
    guard.disarm();

    Ok(PendingCall {
        index,
        proc_index,
        class,
        astack_idx,
        slot,
        seq,
        start,
        trace,
        meter,
        copies,
        oob,
        transport,
        bulk_chunk,
        oob_region,
        linkage_slot: None,
        estack_key: None,
        reply: None,
        error: None,
    })
}

/// Server half of one drained call: E-stack association, stub read,
/// dispatch, stub place. Runs in the server's context on the migrated
/// client thread. Everything on the call's own meter.
fn serve_one(env: &BatchEnv<'_>, pc: &mut PendingCall) -> Result<(), CallError> {
    let cpu = env.cpu;
    let cost = &env.cost;
    let state = env.state;
    let server_ctx = state.server.ctx();
    let proc = &state.interface.procs[pc.proc_index];
    let plan = &state.plans.procs[pc.proc_index];
    let aref = state
        .astacks
        .lookup(pc.astack_idx)
        .ok_or(CallError::BadAStack)?;

    // Lazy E-stack association, keyed by the A-stack's global identity.
    let astack_key = (aref.region.id().0 << 24) | pc.astack_idx as u64;
    let (estack, fresh) = state.estack_pool.get_for_call(env.rt.kernel(), astack_key);
    pc.estack_key = Some(astack_key);
    if fresh {
        charge(cpu, &mut pc.meter, Phase::Other, ESTACK_ALLOC_COST);
    }
    env.thread.set_user_sp(estack.id().0 << 32);
    let mut frame_header = [0u8; 16];
    frame_header[..4].copy_from_slice(&(pc.proc_index as u32).to_le_bytes());
    frame_header[4..8].copy_from_slice(&(pc.astack_idx as u32).to_le_bytes());
    frame_header[8..].copy_from_slice(&0xF1FE_F1FE_CA11_F4A3u64.to_le_bytes());
    estack.write_raw(0, &frame_header).map_err(CallError::Mem)?;

    charge(
        cpu,
        &mut pc.meter,
        Phase::ServerStub,
        cost.server_stub_entry,
    );
    touch_set(
        cpu,
        state.touch.server_side().iter().copied(),
        &mut pc.meter,
    );
    touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut pc.meter);

    // Rebuild the out-of-band store under the server's protection context.
    let server_oob: OobStore = match &pc.transport {
        None => OobStore::new(),
        Some(t) => {
            server_ctx
                .check(t.region.id(), false, false)
                .map_err(CallError::Mem)?;
            let mut segs = OobStore::new();
            let mut off = t.base;
            let mut scratch = Meter::disabled();
            for _ in 0..pc.oob.len() {
                let hdr = t.region.read_vec(off, 8).map_err(CallError::Mem)?;
                let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
                segs.push(t.region.read_vec(off + 8, len).map_err(CallError::Mem)?);
                cpu.touch_pages(t.region.pages_for(off, len + 8), &mut scratch);
                off += len + 8;
            }
            segs
        }
    };

    let sargs = {
        let frame = AStackFrame::new(cpu, server_ctx, &aref.region, aref.offset, aref.size);
        let mut vm = StubVm::new(cost, cpu, &mut pc.meter);
        let vals = match &plan.read {
            Some(rp) => {
                let mut out = ArgVec::new();
                rp.execute(&frame, &mut vm, &mut out)?;
                out
            }
            None => ArgVec::from_vec(vm.server_read_args(proc, &frame, &server_oob)?),
        };
        let misses = frame.misses();
        pc.meter.add_tlb_misses(misses);
        vals
    };
    if env.metered {
        for (slot_l, p) in proc.layout.params.iter().zip(&proc.def.params) {
            if p.dir.is_in() && needs_server_copy(p, proc.def.inplace) {
                pc.copies.record(CopyOp::E, slot_l.size);
            }
        }
    }

    if !state.server.is_active() || !state.client.is_active() {
        return Err(CallError::DomainDead);
    }

    let sctx = ServerCtx {
        rt: Arc::clone(env.rt),
        thread: Arc::clone(env.thread),
        domain: Arc::clone(&state.server),
        cpu_id: cpu.id(),
    };
    let reply = state
        .clerk
        .dispatch(pc.proc_index, &sctx, sargs.as_slice())?;

    charge(
        cpu,
        &mut pc.meter,
        Phase::ServerStub,
        cost.server_stub_return,
    );
    {
        let mut frame = AStackFrame::new(cpu, server_ctx, &aref.region, aref.offset, aref.size);
        match &plan.place {
            Some(p) => p.execute(reply.ret.as_ref(), &reply.outs, &mut frame)?,
            None => {
                let mut vm = StubVm::new(cost, cpu, &mut pc.meter);
                vm.server_place_results(
                    proc,
                    reply.ret.as_ref(),
                    &reply.outs,
                    &mut frame,
                    &mut pc.oob,
                )?;
            }
        }
        let misses = frame.misses();
        pc.meter.add_tlb_misses(misses);
    }
    pc.reply = Some(reply);
    Ok(())
}

/// Aborts a flushed batch at the crossing level (binding validation or
/// domain liveness failed): every pending call fails with the same error,
/// resources drain, and the ring is reset.
fn abort_batch(
    env: &BatchEnv<'_>,
    pending: &mut Vec<PendingCall>,
    results: &mut [Option<Result<CallOutcome, CallError>>],
    e: &CallError,
) {
    env.ring.reset();
    for mut pc in pending.drain(..) {
        release_resources(env, &mut pc);
        env.state.stats.note_failure();
        results[pc.index] = Some(Err(clone_err(e)));
    }
}

/// The return half of one reaped call: the return value plus the
/// out-param values (by argument position) the client stub fetched.
type FetchedResults = (Option<Value>, Vec<(usize, Value)>);

/// Rings the doorbell and performs one full crossing: kernel validation,
/// per-call linkage claims, context switch, server-side drain/dispatch of
/// every pending call, completion posting, and the return crossing with
/// per-call result fetch.
#[allow(clippy::too_many_arguments)]
fn flush(
    env: &BatchEnv<'_>,
    batch_meter: &mut Meter,
    pending: &mut Vec<PendingCall>,
    results: &mut [Option<Result<CallOutcome, CallError>>],
    doorbells: &mut u64,
    traps: &mut u64,
    thread_dead: &mut bool,
) {
    if pending.is_empty() {
        return;
    }
    let cpu = env.cpu;
    let cost = &env.cost;
    let state = env.state;
    let client_ctx = state.client.ctx();
    let server_ctx = state.server.ctx();

    // ---- Doorbell -----------------------------------------------------
    // One trap per doorbell — the whole point. A coalesced ring (server
    // wakeup still pending) costs nothing; a lost doorbell (fault
    // injection) must be rung again: two traps, still fewer than N.
    let coalesced = env.ring.doorbell().ring();
    let lost =
        !coalesced && matches!(&env.fault, Some(plan) if plan.lose_doorbell(&env.doorbell_site));
    env.ring.emit(
        replay::kind::RING_DOORBELL,
        if coalesced {
            0
        } else if lost {
            2
        } else {
            1
        },
    );
    if !coalesced {
        if lost {
            env.rt.kernel().trap(cpu, batch_meter);
            *traps += 1;
            *doorbells += 1;
            env.ring.doorbells_total().inc();
        }
        env.rt.kernel().trap(cpu, batch_meter);
        *traps += 1;
        *doorbells += 1;
        env.ring.doorbells_total().inc();
    }

    // ---- Kernel, call crossing (once per batch) -----------------------
    charge(
        cpu,
        batch_meter,
        Phase::KernelTransfer,
        cost.kernel_transfer_call,
    );
    touch_set(cpu, state.touch.kernel_call().iter().copied(), batch_meter);

    let handle = match &env.fault {
        Some(plan) if plan.forge_binding("batch:binding") => RawHandle {
            id: env.handle.id,
            nonce: env.handle.nonce ^ 0xDEAD_BEEF,
        },
        _ => env.handle,
    };
    let vstate = match env.rt.validate_binding(handle) {
        Ok(s) => s,
        Err(e) => {
            abort_batch(env, pending, results, &e);
            return;
        }
    };
    if !vstate.server.is_active() || !vstate.client.is_active() {
        abort_batch(env, pending, results, &CallError::DomainDead);
        return;
    }

    // Per-call validation: A-stack, linkage claim. The linkage stack gets
    // ONE entry per crossing — the batch migrates the thread once.
    let return_sp = env.thread.user_sp();
    let mut linkage_pushed = false;
    for pc in pending.iter_mut() {
        if pc.proc_index >= vstate.interface.procs.len() {
            pc.error = Some(CallError::BadProcedure {
                index: pc.proc_index,
            });
            continue;
        }
        let aref = match vstate.astacks.validate(pc.astack_idx, pc.class) {
            Ok(a) => a,
            Err(e) => {
                pc.error = Some(e);
                continue;
            }
        };
        if aref.overflow {
            charge(
                cpu,
                &mut pc.meter,
                Phase::Validation,
                OVERFLOW_VALIDATION_COST,
            );
        }
        let slot = match vstate.astacks.linkage(pc.astack_idx) {
            Some(s) => s,
            None => {
                pc.error = Some(CallError::BadAStack);
                continue;
            }
        };
        if !slot.try_claim() {
            pc.error = Some(CallError::AStackBusy);
            continue;
        }
        let linkage = Linkage {
            caller_domain: vstate.client.id(),
            callee_domain: vstate.server.id(),
            binding: handle,
            astack_index: pc.astack_idx,
            proc_index: pc.proc_index,
            return_sp,
            valid: true,
        };
        slot.set_record(linkage);
        if !linkage_pushed {
            env.thread.push_linkage(linkage);
            linkage_pushed = true;
        }
        pc.linkage_slot = Some(slot);
    }

    // ---- Transfer into the server domain (once per batch) -------------
    cpu.switch_context(server_ctx.id(), cost, batch_meter);
    env.ring.take_doorbell();

    // ---- Server drain: the whole batch per wakeup ---------------------
    for pc in pending.iter_mut() {
        let desc = match env.ring.drain(cpu, server_ctx) {
            Ok(Some(d)) => Some(d),
            Ok(None) => None,
            Err(_) => None,
        };
        charge(cpu, batch_meter, Phase::QueueOp, cost.ring_descriptor_op);
        let matched = desc.as_ref().is_some_and(|d| {
            d.slot == pc.slot
                && d.proc_index == pc.proc_index
                && d.astack_idx == pc.astack_idx
                && d.seq == pc.seq
        });
        if !matched && pc.error.is_none() {
            pc.error = Some(CallError::CallFailed);
        }
        if pc.error.is_none() {
            if let Err(e) = serve_one(env, pc) {
                pc.error = Some(e);
            }
        }
        let status = u32::from(pc.error.is_some());
        let _ = env
            .ring
            .post_completion(cpu, server_ctx, pc.slot, pc.seq, status);
    }

    // ---- Kernel, return crossing (once per batch) ---------------------
    env.rt.kernel().trap(cpu, batch_meter);
    *traps += 1;
    charge(
        cpu,
        batch_meter,
        Phase::KernelTransfer,
        cost.kernel_transfer_return,
    );
    touch_set(
        cpu,
        state.touch.kernel_return().iter().copied(),
        batch_meter,
    );

    for pc in pending.iter_mut() {
        if let Some(slot) = pc.linkage_slot.take() {
            slot.release();
        }
        if let Some(key) = pc.estack_key.take() {
            state.estack_pool.end_call(key);
        }
    }

    let mut crossing_error: Option<CallError> = None;
    if linkage_pushed {
        match env.thread.pop_linkage() {
            ReturnPath::Return { to, call_failed } => {
                env.thread.set_user_sp(to.return_sp);
                if call_failed || to.caller_domain != vstate.client.id() {
                    crossing_error = Some(CallError::CallFailed);
                }
            }
            ReturnPath::DestroyThread => {
                let aborted = env.thread.is_abandoned();
                env.rt.kernel().reap_thread(env.thread.id());
                *thread_dead = true;
                crossing_error = Some(if aborted {
                    CallError::CallAborted
                } else {
                    CallError::CallFailed
                });
            }
        }
    }
    if let Some(e) = &crossing_error {
        for pc in pending.iter_mut() {
            if pc.error.is_none() {
                pc.error = Some(clone_err(e));
                pc.reply = None;
            }
        }
    }

    // ---- Transfer back and reap completions ---------------------------
    if !*thread_dead {
        cpu.switch_context(client_ctx.id(), cost, batch_meter);
    }
    for mut pc in pending.drain(..) {
        if !*thread_dead {
            let _ = env.ring.reap(cpu, client_ctx, pc.slot, pc.seq);
            charge(cpu, batch_meter, Phase::QueueOp, cost.ring_descriptor_op);
        }
        if let Some(e) = pc.error.take() {
            release_resources(env, &mut pc);
            state.stats.note_failure();
            results[pc.index] = Some(Err(e));
            continue;
        }

        // ---- Client stub, return half (per call) ----------------------
        charge(
            cpu,
            &mut pc.meter,
            Phase::ClientStub,
            cost.client_stub_return,
        );
        touch_set(
            cpu,
            state.touch.client_return().iter().copied(),
            &mut pc.meter,
        );
        let fetched = (|| -> Result<FetchedResults, CallError> {
            let aref = state
                .astacks
                .lookup(pc.astack_idx)
                .ok_or(CallError::BadAStack)?;
            touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut pc.meter);
            let proc = &state.interface.procs[pc.proc_index];
            let plan = &state.plans.procs[pc.proc_index];
            let frame = AStackFrame::new(cpu, client_ctx, &aref.region, aref.offset, aref.size);
            let mut vm = StubVm::new(cost, cpu, &mut pc.meter);
            let r = match &plan.fetch {
                Some(p) => p.execute(&frame, &mut vm)?,
                None => vm.client_fetch_results(proc, &frame, &pc.oob)?,
            };
            let misses = frame.misses();
            pc.meter.add_tlb_misses(misses);
            Ok(r)
        })();
        let (ret, outs) = match fetched {
            Ok(r) => r,
            Err(e) => {
                release_resources(env, &mut pc);
                state.stats.note_failure();
                results[pc.index] = Some(Err(e));
                continue;
            }
        };
        if env.metered {
            let proc = &state.interface.procs[pc.proc_index];
            if proc.layout.ret.is_some() {
                pc.copies
                    .record(CopyOp::F, proc.layout.ret.as_ref().map_or(0, |s| s.size));
            }
            for (slot_l, p) in proc.layout.params.iter().zip(&proc.def.params) {
                if p.dir.is_out() {
                    pc.copies.record(CopyOp::F, slot_l.size);
                }
            }
        }

        if let Some(idx) = pc.bulk_chunk.take() {
            if let Some(arena) = &state.bulk {
                arena.release(idx);
            }
        }
        if let Some(region) = pc.oob_region.take() {
            state.client.ctx().unmap(region.id());
            state.server.ctx().unmap(region.id());
            env.machine.mem().free(region.id());
        }
        state.astacks.release(pc.astack_idx);
        charge_locked(
            cpu,
            &mut pc.meter,
            Phase::QueueOp,
            cost.astack_queue_op,
            ASTACK_QUEUE_LOCK,
        );

        let elapsed = cpu.now() - pc.start;
        state.stats.note_call();
        state.stats.observe_latency(elapsed);
        state.stats.observe_tail_latency(elapsed);
        if env.metered {
            state.stats.observe_stub_ns(
                pc.meter.total_for(Phase::ClientStub)
                    + pc.meter.total_for(Phase::ServerStub)
                    + pc.meter.total_for(Phase::ArgCopy)
                    + pc.meter.total_for(Phase::Marshal),
            );
        }
        results[pc.index] = Some(Ok(CallOutcome {
            ret,
            outs,
            elapsed,
            meter: pc.meter,
            copies: pc.copies,
            exchanged_on_call: false,
            exchanged_on_return: false,
            end_cpu: cpu.id(),
            trace: pc.trace,
        }));
    }
    if *thread_dead {
        env.ring.reset();
    }
}

/// The batched call path: enqueue every request onto the submission ring
/// (flushing whenever it fills), ring the doorbell once per flush, and
/// reap completions. Remote and ringless bindings degrade to serial
/// calls, as do calls the `ring_full` fault knob rejects.
pub(crate) fn lrpc_call_batch(
    rt: &Arc<LrpcRuntime>,
    handle: RawHandle,
    client_state: &Arc<BindingState>,
    cpu_start: usize,
    thread: &Arc<Thread>,
    requests: Vec<(usize, Vec<Value>)>,
    metered: bool,
) -> Result<BatchOutcome, CallError> {
    let n = requests.len();
    client_state.stats.observe_batch_size(n as u64);

    let ring = match (&client_state.ring, client_state.remote) {
        (Some(r), false) => Arc::clone(r),
        _ => {
            // No ring to batch on: serial calls, one trap pair each.
            let mut results = Vec::with_capacity(n);
            let mut cpu_id = cpu_start;
            for (proc_index, args) in &requests {
                let out = lrpc_call(
                    rt,
                    handle,
                    client_state,
                    cpu_id,
                    thread,
                    *proc_index,
                    args,
                    metered,
                );
                if let Ok(o) = &out {
                    cpu_id = o.end_cpu;
                } else {
                    client_state.stats.note_failure();
                }
                results.push(out);
            }
            return Ok(BatchOutcome {
                results,
                batch_meter: Meter::disabled(),
                doorbells: 0,
                traps: 0,
                degraded: n as u64,
                elapsed: Nanos::ZERO,
                end_cpu: cpu_id,
            });
        }
    };

    let machine = Arc::clone(rt.kernel().machine());
    let cost = *machine.cost();
    let cpu = machine.cpu(cpu_start);
    let mut batch_meter = if metered {
        Meter::enabled()
    } else {
        Meter::disabled()
    };
    let trace = TraceId::next();
    batch_meter.set_trace(trace);
    let start = cpu.now();

    let env = BatchEnv {
        rt,
        machine: &machine,
        cost,
        state: client_state,
        ring: &ring,
        cpu,
        thread,
        handle,
        metered,
        fault: rt.fault_plan(),
        doorbell_site: format!("doorbell:{}", client_state.interface.name),
    };
    let ring_full_site = format!("ring-full:{}", client_state.interface.name);

    let mut results: Vec<Option<Result<CallOutcome, CallError>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut pending: Vec<PendingCall> = Vec::new();
    let mut doorbells = 0u64;
    let mut traps = 0u64;
    let mut degraded = 0u64;
    let mut thread_dead = false;
    let mut seq = 0u32;

    for (index, (proc_index, args)) in requests.iter().enumerate() {
        if thread_dead {
            results[index] = Some(Err(CallError::CallFailed));
            continue;
        }
        // Fault injection: the submission ring is presented as full and
        // this call degrades gracefully to a single-call trap. The real
        // full condition flushes and retries — no degradation needed.
        let full_injected = matches!(&env.fault, Some(p) if p.ring_full(&ring_full_site));
        if full_injected || env.ring.is_full() {
            flush(
                &env,
                &mut batch_meter,
                &mut pending,
                &mut results,
                &mut doorbells,
                &mut traps,
                &mut thread_dead,
            );
            if thread_dead {
                results[index] = Some(Err(CallError::CallFailed));
                continue;
            }
            if full_injected {
                degraded += 1;
                let out = lrpc_call(
                    rt,
                    handle,
                    client_state,
                    cpu.id(),
                    thread,
                    *proc_index,
                    args,
                    metered,
                );
                if out.is_err() {
                    client_state.stats.note_failure();
                }
                results[index] = Some(out);
                continue;
            }
        }
        match enqueue_one(&env, &mut batch_meter, index, *proc_index, args, seq) {
            Ok(pc) => {
                seq = seq.wrapping_add(1);
                pending.push(pc);
            }
            Err(CallError::NoAStacks) if !pending.is_empty() => {
                // The batch itself is holding the class's A-stacks:
                // flush to release them, then retry once.
                flush(
                    &env,
                    &mut batch_meter,
                    &mut pending,
                    &mut results,
                    &mut doorbells,
                    &mut traps,
                    &mut thread_dead,
                );
                if thread_dead {
                    results[index] = Some(Err(CallError::CallFailed));
                    continue;
                }
                match enqueue_one(&env, &mut batch_meter, index, *proc_index, args, seq) {
                    Ok(pc) => {
                        seq = seq.wrapping_add(1);
                        pending.push(pc);
                    }
                    Err(e) => {
                        client_state.stats.note_failure();
                        results[index] = Some(Err(e));
                    }
                }
            }
            Err(e) => {
                client_state.stats.note_failure();
                results[index] = Some(Err(e));
            }
        }
    }
    flush(
        &env,
        &mut batch_meter,
        &mut pending,
        &mut results,
        &mut doorbells,
        &mut traps,
        &mut thread_dead,
    );

    let results: Vec<Result<CallOutcome, CallError>> = results
        .into_iter()
        .map(|r| r.unwrap_or(Err(CallError::CallFailed)))
        .collect();
    Ok(BatchOutcome {
        results,
        batch_meter,
        doorbells,
        traps,
        degraded,
        elapsed: cpu.now() - start,
        end_cpu: cpu.id(),
    })
}

/// Shared completion cell behind a [`CallFuture`].
struct CompletionState {
    result: Option<Result<CallOutcome, CallError>>,
    waker: Option<Waker>,
}

/// A future resolved when the batch's completion ring is reaped.
///
/// Created by [`RingBatch::call_async`]; resolves after
/// [`RingBatch::submit`] drains the paired completion ring.
pub struct CallFuture {
    shared: Arc<Mutex<CompletionState>>,
}

impl Future for CallFuture {
    type Output = Result<CallOutcome, CallError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.lock();
        match state.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// An open batch of calls accumulating toward one doorbell.
pub struct RingBatch<'a> {
    binding: &'a Binding,
    cpu_id: usize,
    thread: Arc<Thread>,
    requests: Vec<(usize, Vec<Value>)>,
    completions: Vec<Arc<Mutex<CompletionState>>>,
}

impl<'a> RingBatch<'a> {
    /// The binding this batch submits through.
    pub fn binding(&self) -> &'a Binding {
        self.binding
    }

    /// Calls enqueued so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if nothing is enqueued yet.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Enqueues a call by procedure name, returning a future resolved on
    /// completion-ring reap (i.e. when [`RingBatch::submit`] runs).
    pub fn call_async(&mut self, proc: &str, args: &[Value]) -> Result<CallFuture, CallError> {
        let index = self.binding.proc_index(proc)?;
        Ok(self.call_async_indexed(index, args.to_vec()))
    }

    /// Enqueues a call by procedure identifier.
    pub fn call_async_indexed(&mut self, proc_index: usize, args: Vec<Value>) -> CallFuture {
        let shared = Arc::new(Mutex::new(CompletionState {
            result: None,
            waker: None,
        }));
        self.requests.push((proc_index, args));
        self.completions.push(Arc::clone(&shared));
        CallFuture { shared }
    }

    /// Rings the doorbell: the whole batch crosses in (at most) one trap
    /// pair, every [`CallFuture`] resolves, and the crossing-level
    /// accounting comes back.
    pub fn submit(self) -> Result<BatchSummary, CallError> {
        let outcome = lrpc_call_batch(
            self.binding.runtime(),
            self.binding.handle(),
            self.binding.state(),
            self.cpu_id,
            &self.thread,
            self.requests,
            true,
        )?;
        let calls = outcome.results.len();
        let mut ok = 0usize;
        let mut failed = 0usize;
        for (result, cell) in outcome.results.into_iter().zip(&self.completions) {
            if result.is_ok() {
                ok += 1;
            } else {
                failed += 1;
            }
            let waker = {
                let mut state = cell.lock();
                state.result = Some(result);
                state.waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
        Ok(BatchSummary {
            calls,
            ok,
            failed,
            doorbells: outcome.doorbells,
            traps: outcome.traps,
            degraded: outcome.degraded,
            batch_meter: outcome.batch_meter,
            elapsed: outcome.elapsed,
        })
    }
}

/// Drives a future to completion on the current thread. The LRPC batch
/// front-end resolves futures synchronously at [`RingBatch::submit`], so
/// a trivial executor suffices — no reactor, no timers.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::yield_now(),
        }
    }
}

impl Binding {
    /// Makes a closed batch of calls through the submission/completion
    /// ring: every request is enqueued (the ring flushes as it fills),
    /// the doorbell rings once per flush, and the server drains the whole
    /// batch per wakeup. Requests are `(procedure index, arguments)`.
    pub fn call_batch(
        &self,
        cpu_id: usize,
        thread: &Arc<Thread>,
        requests: Vec<(usize, Vec<Value>)>,
    ) -> Result<BatchOutcome, CallError> {
        lrpc_call_batch(
            self.runtime(),
            self.handle(),
            self.state(),
            cpu_id,
            thread,
            requests,
            true,
        )
    }

    /// Opens an async batch: enqueue with [`RingBatch::call_async`], then
    /// [`RingBatch::submit`] to ring the doorbell and resolve the futures.
    pub fn batch(&self, cpu_id: usize, thread: &Arc<Thread>) -> RingBatch<'_> {
        RingBatch {
            binding: self,
            cpu_id,
            thread: Arc::clone(thread),
            requests: Vec::new(),
            completions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TestRuntime;
    use crate::{Handler, LrpcRuntime};
    use firefly::cpu::Machine;

    fn env() -> (Arc<LrpcRuntime>, Arc<Thread>, Binding) {
        let rt = TestRuntime::new()
            .machine(Machine::cvax_firefly())
            .domain_caching(false)
            .build();
        let server = rt.kernel().create_domain("svc");
        rt.export(
            &server,
            r#"interface Svc {
                [astacks = 8]
                procedure Add(a: int32, b: int32) -> int32;
                procedure Neg(a: int32) -> int32;
            }"#,
            vec![
                Box::new(|_: &ServerCtx, args: &[Value]| {
                    let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                        unreachable!()
                    };
                    Ok(Reply::value(Value::Int32(a + b)))
                }) as Handler,
                Box::new(|_: &ServerCtx, args: &[Value]| {
                    let Value::Int32(a) = &args[0] else {
                        unreachable!()
                    };
                    Ok(Reply::value(Value::Int32(-a)))
                }) as Handler,
            ],
        )
        .unwrap();
        let client = rt.kernel().create_domain("app");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Svc").unwrap();
        (rt, thread, binding)
    }

    #[test]
    fn batched_mixed_procedures_match_serial_results() {
        let (_rt, thread, binding) = env();
        let add = binding.proc_index("Add").unwrap();
        let neg = binding.proc_index("Neg").unwrap();
        let requests: Vec<(usize, Vec<Value>)> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    (add, vec![Value::Int32(i), Value::Int32(100)])
                } else {
                    (neg, vec![Value::Int32(i)])
                }
            })
            .collect();
        let out = binding.call_batch(0, &thread, requests).unwrap();
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.degraded, 0);
        for (i, r) in out.results.iter().enumerate() {
            let o = r.as_ref().expect("batched call failed");
            let expect = if i % 2 == 0 {
                i as i32 + 100
            } else {
                -(i as i32)
            };
            assert_eq!(o.ret, Some(Value::Int32(expect)), "call {i}");
        }
    }

    #[test]
    fn one_trap_pair_per_doorbell() {
        let (rt, thread, binding) = env();
        let add = binding.proc_index("Add").unwrap();
        let requests: Vec<(usize, Vec<Value>)> = (0..5)
            .map(|i| (add, vec![Value::Int32(i), Value::Int32(1)]))
            .collect();
        let out = binding.call_batch(0, &thread, requests).unwrap();
        // One doorbell trap in, one return trap out — for five calls.
        assert_eq!(out.doorbells, 1);
        assert_eq!(out.traps, 2);
        let trap_cost = rt.kernel().machine().cost().hw.kernel_trap;
        assert_eq!(
            out.batch_meter.total_for(Phase::Trap),
            trap_cost * out.traps,
            "exactly one Phase::Trap charge per doorbell trap"
        );
        // The per-call meters carry no trap/crossing charges at all.
        for r in &out.results {
            let m = &r.as_ref().unwrap().meter;
            assert_eq!(m.total_for(Phase::Trap), Nanos::ZERO);
            assert_eq!(m.total_for(Phase::KernelTransfer), Nanos::ZERO);
            assert_eq!(m.total_for(Phase::ContextSwitch), Nanos::ZERO);
        }
    }

    #[test]
    fn futures_resolve_on_submit() {
        let (_rt, thread, binding) = env();
        let mut batch = binding.batch(0, &thread);
        let a = batch
            .call_async("Add", &[Value::Int32(40), Value::Int32(2)])
            .unwrap();
        let b = batch.call_async("Neg", &[Value::Int32(7)]).unwrap();
        assert_eq!(batch.len(), 2);
        let summary = batch.submit().unwrap();
        assert_eq!(summary.calls, 2);
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.doorbells, 1);
        let ra = block_on(a).unwrap();
        let rb = block_on(b).unwrap();
        assert_eq!(ra.ret, Some(Value::Int32(42)));
        assert_eq!(rb.ret, Some(Value::Int32(-7)));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_rt, thread, binding) = env();
        let out = binding.call_batch(0, &thread, Vec::new()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.doorbells, 0);
        assert_eq!(out.traps, 0);
    }

    #[test]
    fn oversized_batch_flushes_and_reuses_the_ring() {
        let (_rt, thread, binding) = env();
        let add = binding.proc_index("Add").unwrap();
        // Only 8 A-stacks: the batch must flush every 8 calls to recycle
        // them, well before the 64-slot ring fills.
        let requests: Vec<(usize, Vec<Value>)> = (0..20)
            .map(|i| (add, vec![Value::Int32(i), Value::Int32(0)]))
            .collect();
        let out = binding.call_batch(0, &thread, requests).unwrap();
        assert_eq!(out.results.len(), 20);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().ret, Some(Value::Int32(i as i32)));
        }
        assert!(
            out.doorbells >= 2,
            "20 calls over 8 A-stacks need multiple flushes, got {}",
            out.doorbells
        );
        assert!(
            out.doorbells <= 4,
            "doorbells should stay far below call count, got {}",
            out.doorbells
        );
    }
}
