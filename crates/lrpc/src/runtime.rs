//! The LRPC runtime.
//!
//! One [`LrpcRuntime`] per machine ties together the kernel, the name
//! server, the Binding Object table, the per-server E-stack pools, and the
//! optional conventional-RPC transport for remote bindings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use firefly::fault::FaultPlan;
use idl::ast::InterfaceDef;
use idl::plan::InterfacePlans;
use idl::stubgen::{compile, CompiledInterface};
use kernel::ids::DomainId;
use kernel::kernel::{Kernel, TerminationReport};
use kernel::nameserver::NameServer;
use kernel::objects::{HandleTable, RawHandle};
use kernel::thread::Thread;
use kernel::Domain;
use parking_lot::{Mutex, RwLock};

use crate::astack::{AStackMapping, AStackPolicy, AStackSet};
use crate::binding::{Binding, BindingState, Clerk, Handler};
use crate::bulk::BulkArena;
use crate::error::CallError;
use crate::estack::{EStackPool, DEFAULT_ESTACK_SIZE, DEFAULT_MAX_ESTACKS};
use crate::remote::RemoteTransport;
use crate::touch::TouchPlan;

/// Tunables of the runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Use the idle-processor optimization of Section 3.4 (caching domain
    /// contexts on idle processors). Tables 4/5 report both settings.
    pub domain_caching: bool,
    /// How long an importer waits for the exporter's clerk.
    pub import_timeout: Duration,
    /// What a call does when its procedure's A-stacks are exhausted.
    pub astack_policy: AStackPolicy,
    /// Bytes per E-stack.
    pub estack_size: usize,
    /// E-stacks per server domain before LRU reclamation.
    pub max_estacks: usize,
    /// How A-stack regions are mapped (pairwise, or the Firefly's
    /// globally-shared fallback — Section 3.5).
    pub astack_mapping: AStackMapping,
    /// Adaptive sizing plan from a prior run: per-interface A-stack counts
    /// and ring depths that override the PDL's static guesses at import
    /// time. `None` (the default) keeps the PDL values.
    pub adapt: Option<Arc<crate::adapt::AdaptPlan>>,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            domain_caching: true,
            import_timeout: Duration::from_secs(5),
            astack_policy: AStackPolicy::Wait(Duration::from_secs(1)),
            estack_size: DEFAULT_ESTACK_SIZE,
            max_estacks: DEFAULT_MAX_ESTACKS,
            astack_mapping: AStackMapping::Pairwise,
            adapt: None,
        }
    }
}

/// The LRPC run-time library plus the kernel facilities it drives.
///
/// Everything a call touches per invocation is either sharded (the
/// Binding Object table), cached on the binding at import time (the
/// E-stack pool), or gated behind an atomic flag (the fault plan), so the
/// Null-call fast path acquires zero process-global locks. The remaining
/// runtime maps are read-mostly `RwLock`s (or import-time-only mutexes)
/// and report every acquisition to [`firefly::meter::note_global_lock`].
/// One plan-cache slot: the pinned interface plus its compiled plans.
type PlanCacheEntry = (Arc<CompiledInterface>, Arc<InterfacePlans>);

pub struct LrpcRuntime {
    kernel: Arc<Kernel>,
    config: RuntimeConfig,
    names: NameServer<Arc<Clerk>>,
    bindings: HandleTable<Arc<BindingState>>,
    estacks: RwLock<HashMap<DomainId, Arc<EStackPool>>>,
    remote: RwLock<Option<Arc<dyn RemoteTransport>>>,
    proxy_domain: Mutex<Option<Arc<Domain>>>,
    fault: RwLock<Option<Arc<FaultPlan>>>,
    /// True while a fault plan is installed. Lets `fault_plan()` — called
    /// once per LRPC — be a single atomic load in the common no-chaos
    /// case instead of a lock acquisition.
    fault_installed: AtomicBool,
    /// The runtime's metrics registry. Per-runtime (not process-global) so
    /// parallel tests each observe only their own runtime's activity.
    /// Components register handles at bind time; the steady call path
    /// updates them with lone atomic ops, never through the registry.
    metrics: Arc<obs::Registry>,
    /// Bind-time compiled copy plans, keyed by the compiled interface's
    /// identity. The stored `Arc<CompiledInterface>` pins the keyed
    /// address, so a key can never be reused by a different interface
    /// while its entry lives. Import-time only — the call path reads
    /// plans off the binding, never through this map.
    plan_cache: Mutex<HashMap<usize, PlanCacheEntry>>,
    /// Plan-cache hit/miss counters (`stub_plan_cache_{hit,miss}`).
    plan_hits: obs::Counter,
    plan_misses: obs::Counter,
    /// The record/replay session every nondeterministic decision reports
    /// to. Live sessions record nothing and answer nothing — components
    /// skip attaching entirely, so the call path pays only a dead
    /// `OnceLock` load.
    rr: Arc<replay::Session>,
}

impl LrpcRuntime {
    /// Creates a runtime with default configuration.
    pub fn new(kernel: Arc<Kernel>) -> Arc<LrpcRuntime> {
        LrpcRuntime::with_config(kernel, RuntimeConfig::default())
    }

    /// Creates a runtime with explicit configuration.
    pub fn with_config(kernel: Arc<Kernel>, config: RuntimeConfig) -> Arc<LrpcRuntime> {
        LrpcRuntime::with_session(kernel, config, replay::Session::live())
    }

    /// Creates a runtime with an explicit record/replay session.
    ///
    /// A `Record` session captures every nondeterministic decision the
    /// runtime and the simulated machine make (clock charges, scheduler
    /// picks, fault draws, stack-allocation outcomes); a `Replay` session
    /// answers fault draws from a prior log and checks everything else
    /// against it. Pass [`replay::Session::live`] (what [`with_config`]
    /// does) for normal operation.
    ///
    /// [`with_config`]: LrpcRuntime::with_config
    pub fn with_session(
        kernel: Arc<Kernel>,
        config: RuntimeConfig,
        session: Arc<replay::Session>,
    ) -> Arc<LrpcRuntime> {
        kernel.machine().attach_replay(&session);
        let metrics = Arc::new(obs::Registry::new());
        let plan_hits = metrics.counter("stub_plan_cache_hit");
        let plan_misses = metrics.counter("stub_plan_cache_miss");
        // Doorbell traps across every binding: present from startup so a
        // scrape before the first batch still sees the series.
        let _ = metrics.counter("lrpc_doorbells_total");
        Arc::new(LrpcRuntime {
            kernel,
            config,
            names: NameServer::new(),
            bindings: HandleTable::new(),
            estacks: RwLock::new(HashMap::new()),
            remote: RwLock::new(None),
            proxy_domain: Mutex::new(None),
            fault: RwLock::new(None),
            fault_installed: AtomicBool::new(false),
            metrics,
            plan_cache: Mutex::new(HashMap::new()),
            plan_hits,
            plan_misses,
            rr: session,
        })
    }

    /// The runtime's record/replay session.
    pub fn replay_session(&self) -> &Arc<replay::Session> {
        &self.rr
    }

    /// The kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The runtime's metrics registry.
    pub fn metrics(&self) -> &Arc<obs::Registry> {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Exports an interface (given as IDL source) from `server`, installing
    /// the clerk in the name server. Returns the clerk.
    ///
    /// `handlers` must supply one body per declared procedure, in order.
    pub fn export(
        self: &Arc<Self>,
        server: &Arc<Domain>,
        idl_src: &str,
        handlers: Vec<Handler>,
    ) -> Result<Arc<Clerk>, CallError> {
        let def = idl::parse(idl_src)
            .map_err(|e| CallError::ServerFault(format!("interface parse error: {e}")))?;
        self.export_def(server, &def, handlers)
    }

    /// Exports an already-parsed interface definition.
    pub fn export_def(
        self: &Arc<Self>,
        server: &Arc<Domain>,
        def: &InterfaceDef,
        handlers: Vec<Handler>,
    ) -> Result<Arc<Clerk>, CallError> {
        if !server.is_active() {
            return Err(CallError::DomainDead);
        }
        let compiled = Arc::new(compile(def));
        let clerk = Arc::new(Clerk::new(compiled, Arc::clone(server), handlers));
        self.names.register(def.name.clone(), Arc::clone(&clerk));
        Ok(clerk)
    }

    /// The compiled copy plans for an interface, compiled on first use and
    /// cached per interface identity — re-imports (any client domain, the
    /// same export) share one compilation. Bind-time only: takes the
    /// runtime's plan-cache mutex.
    pub fn compiled_plans(&self, iface: &Arc<CompiledInterface>) -> Arc<InterfacePlans> {
        firefly::meter::note_global_lock();
        let key = Arc::as_ptr(iface) as usize;
        let mut cache = self.plan_cache.lock();
        if let Some((_, plans)) = cache.get(&key) {
            self.plan_hits.inc();
            return Arc::clone(plans);
        }
        self.plan_misses.inc();
        let plans = Arc::new(InterfacePlans::compile(iface));
        cache.insert(key, (Arc::clone(iface), Arc::clone(&plans)));
        plans
    }

    /// Imports an interface into `client`: waits for the exporter's clerk,
    /// obtains the PDL, pairwise-allocates the A-stacks and linkage
    /// records, and returns the Binding Object wrapped in a [`Binding`].
    pub fn import(
        self: &Arc<Self>,
        client: &Arc<Domain>,
        name: &str,
    ) -> Result<Binding, CallError> {
        if !client.is_active() {
            return Err(CallError::DomainDead);
        }
        let clerk = self
            .names
            .import_wait(name, self.config.import_timeout)
            .ok_or_else(|| CallError::ImportTimeout {
                name: name.to_string(),
            })?;
        let server = Arc::clone(clerk.domain());
        if !server.is_active() {
            return Err(CallError::DomainDead);
        }

        // The clerk's reply: the PDL, from which the kernel sizes the
        // pairwise A-stack allocation. An adaptive sizing plan (from a
        // prior run's observations) overrides the PDL's static
        // simultaneous-call guesses; each application is a recorded replay
        // decision so adaptive runs replay byte-identically.
        let adapt_rec = self.config.adapt.as_ref().and_then(|p| p.get(name));
        if let Some(rec) = adapt_rec {
            if !self.rr.is_live() {
                self.rr
                    .stream("adapt")
                    .emit(replay::kind::ADAPT, crate::adapt::AdaptPlan::pack(rec));
            }
        }
        let pdl = clerk.pdl();
        let per_proc: Vec<(usize, u32)> = pdl
            .iter()
            .map(|pd| {
                (
                    pd.astack_size,
                    adapt_rec.map_or(pd.simultaneous_calls, |r| r.astacks),
                )
            })
            .collect();
        let astacks = AStackSet::allocate_mapped(
            &self.kernel,
            client,
            &server,
            &format!("astacks:{name}"),
            &per_proc,
            self.config.astack_mapping,
        );
        astacks.attach_replay(&self.rr);
        // Interfaces declaring large out-of-band parameters also get their
        // bulk arena pairwise-mapped here at bind time, so steady-state
        // large calls never map a per-call segment.
        let bulk = BulkArena::for_interface(
            &self.kernel,
            client,
            &server,
            &format!("bulk-arena:{name}"),
            clerk.interface(),
            &astacks,
        )
        .map(Arc::new);
        if let Some(arena) = &bulk {
            arena.attach_replay(&self.rr);
            self.metrics.register_gauge(
                &format!("lrpc_bulk_arena_busy:{name}"),
                arena.busy_gauge().clone(),
            );
        }
        let touch = TouchPlan::allocate(&self.kernel, client, &server);
        let plans = self.compiled_plans(clerk.interface());
        let estack_pool = self.estack_pool(&server);
        // The pairwise submission/completion ring for doorbell-batched
        // calls, mapped at bind time like the A-stacks.
        let ring = Arc::new(crate::ring::CallRing::with_slots(
            &self.kernel,
            client,
            &server,
            name,
            self.metrics.gauge(&format!("lrpc_ring_occupancy:{name}")),
            self.metrics.counter("lrpc_doorbells_total"),
            adapt_rec.map_or(crate::ring::RING_SLOTS, |r| r.ring_slots),
        ));
        ring.attach_replay(&self.rr);
        let state = Arc::new(BindingState::new(
            Arc::clone(clerk.interface()),
            Arc::clone(client),
            server,
            clerk,
            astacks,
            bulk,
            touch,
            plans,
            estack_pool,
            Some(ring),
            false,
        ));
        state.stats.attach_latency(
            self.metrics
                .histogram(&format!("lrpc_call_latency_ns:{name}")),
        );
        state
            .stats
            .attach_stub_ns(self.metrics.histogram(&format!("lrpc_stub_ns:{name}")));
        state
            .stats
            .attach_bulk_bytes(self.metrics.histogram(&format!("lrpc_bulk_bytes:{name}")));
        state
            .stats
            .attach_batch_size(self.metrics.histogram(&format!("lrpc_batch_size:{name}")));
        state
            .stats
            .attach_tail_latency(self.metrics.tail(&format!("lrpc_tail_latency_ns:{name}")));
        state.stats.attach_cache_hits(
            self.metrics
                .counter(&format!("lrpc_domain_cache_hits:{name}")),
        );
        state.stats.attach_cache_misses(
            self.metrics
                .counter(&format!("lrpc_domain_cache_misses:{name}")),
        );
        let handle = self.bindings.insert(Arc::clone(&state));
        Ok(Binding::new(Arc::clone(self), handle, state))
    }

    /// Imports an interface exported by a *remote* machine through the
    /// configured transport. The resulting Binding Object has its remote
    /// bit set; calls branch to the conventional RPC stub at the first
    /// instruction (Section 5.1).
    pub fn import_remote(
        self: &Arc<Self>,
        client: &Arc<Domain>,
        name: &str,
    ) -> Result<Binding, CallError> {
        let transport = self
            .remote_transport()
            .ok_or(CallError::NoRemoteTransport)?;
        if !transport.exports(name) {
            return Err(CallError::ImportTimeout {
                name: name.to_string(),
            });
        }
        let interface: Arc<CompiledInterface> =
            transport
                .interface(name)
                .ok_or_else(|| CallError::ImportTimeout {
                    name: name.to_string(),
                })?;
        let proxy = self.proxy_domain();
        // The proxy clerk never dispatches (the remote branch happens
        // before the transfer path); it exists so the binding state is
        // fully formed.
        let handlers = (0..interface.procs.len())
            .map(|_| {
                Box::new(|_: &crate::binding::ServerCtx, _: &[idl::wire::Value]| {
                    Err(CallError::NoRemoteTransport)
                }) as Handler
            })
            .collect();
        let clerk = Arc::new(Clerk::new(
            Arc::clone(&interface),
            Arc::clone(&proxy),
            handlers,
        ));
        let pdl = clerk.pdl();
        let per_proc: Vec<(usize, u32)> = pdl
            .iter()
            .map(|pd| (pd.astack_size, pd.simultaneous_calls))
            .collect();
        let astacks = AStackSet::allocate(
            &self.kernel,
            client,
            &proxy,
            &format!("astacks-remote:{name}"),
            &per_proc,
        );
        astacks.attach_replay(&self.rr);
        let touch = TouchPlan::allocate(&self.kernel, client, &proxy);
        let plans = self.compiled_plans(&interface);
        let estack_pool = self.estack_pool(&proxy);
        let state = Arc::new(BindingState::new(
            interface,
            Arc::clone(client),
            proxy,
            clerk,
            astacks,
            // Remote calls branch to the transport before the transfer
            // path, so the proxy binding carries no bulk arena.
            None,
            touch,
            plans,
            estack_pool,
            // Remote calls take the conventional-RPC branch, so there is
            // no pairwise call ring to batch on either.
            None,
            true,
        ));
        state.stats.attach_latency(
            self.metrics
                .histogram(&format!("lrpc_call_latency_ns:{name}")),
        );
        state
            .stats
            .attach_stub_ns(self.metrics.histogram(&format!("lrpc_stub_ns:{name}")));
        state
            .stats
            .attach_tail_latency(self.metrics.tail(&format!("lrpc_tail_latency_ns:{name}")));
        let handle = self.bindings.insert(Arc::clone(&state));
        Ok(Binding::new(Arc::clone(self), handle, state))
    }

    /// Installs the conventional-RPC transport used by remote bindings.
    pub fn set_remote_transport(&self, t: Arc<dyn RemoteTransport>) {
        firefly::meter::note_global_lock();
        *self.remote.write() = Some(t);
    }

    /// The configured remote transport, if any.
    pub fn remote_transport(&self) -> Option<Arc<dyn RemoteTransport>> {
        firefly::meter::note_global_lock();
        self.remote.read().clone()
    }

    /// Installs a fault-injection plan. The call path, the clerks and (if
    /// shared with the transport) the network consult it at their
    /// injection sites; `None` (the default) injects nothing.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        firefly::meter::note_global_lock();
        if let Some(p) = &plan {
            p.attach_replay(&self.rr);
        }
        *self.fault.write() = plan.clone();
        self.fault_installed
            .store(plan.is_some(), Ordering::Release);
    }

    /// The installed fault plan, if any. While no plan is installed (the
    /// normal case) this is one atomic load — the call fast path pays no
    /// lock for the chaos machinery.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.fault_installed.load(Ordering::Acquire) {
            return None;
        }
        firefly::meter::note_global_lock();
        self.fault.read().clone()
    }

    fn proxy_domain(&self) -> Arc<Domain> {
        firefly::meter::note_global_lock();
        let mut guard = self.proxy_domain.lock();
        if let Some(d) = guard.as_ref() {
            return Arc::clone(d);
        }
        let d = self.kernel.create_domain("network-proxy");
        *guard = Some(Arc::clone(&d));
        d
    }

    /// Runs the idle-processor prodding policy over every live domain
    /// (Section 3.4): idle CPUs are parked in the contexts of the domains
    /// that missed the idle-processor optimization most often, and the
    /// per-domain counters are reset.
    ///
    /// Returns the number of idle CPUs that were (re)assigned.
    pub fn rebalance_idle_processors(&self) -> usize {
        let domains = self.kernel.domains();
        kernel::sched::prod_idle_processors(self.kernel.machine(), &domains)
            .iter()
            .sum()
    }

    /// Total A-stack acquires across every binding that found their
    /// class free list empty, whatever the policy then did about it.
    pub fn astack_wait_events(&self) -> u64 {
        let mut total = 0u64;
        self.bindings
            .for_each(|state| total += state.astacks.total_stall_events());
        total
    }

    /// Builds an adaptive sizing plan from what this runtime's bindings
    /// observed: per interface, the worst-case A-stack occupancy peak,
    /// stall-event count, batch peak and tail p99 across every binding of
    /// that interface feed [`crate::adapt::recommend`].
    ///
    /// A slow-path sweep (import/window-boundary time, never on a call).
    pub fn adapt_plan(&self, cfg: &crate::adapt::AdaptConfig) -> crate::adapt::AdaptPlan {
        use crate::adapt::{recommend, AdaptPlan, ClassSnapshot};
        let mut plan = AdaptPlan::default();
        self.bindings.for_each(|state| {
            let mut snap = ClassSnapshot {
                batch_peak: state.stats.batch_peak(),
                ..ClassSnapshot::default()
            };
            for (ci, c) in state.astacks.classes().iter().enumerate() {
                snap.total = snap.total.max(c.primary_count as u64);
                snap.peak_in_use = snap.peak_in_use.max(state.astacks.peak_in_use(ci));
                snap.stall_events = snap.stall_events.max(state.astacks.stall_events(ci));
            }
            if let Some(t) = state.stats.tail_latency() {
                snap.tail_p99_ns = t.snapshot().quantile(0.99).unwrap_or(0);
            }
            let rec = recommend(cfg, &snap);
            plan.per_interface
                .entry(state.interface.name.clone())
                .and_modify(|r| {
                    r.astacks = r.astacks.max(rec.astacks);
                    r.ring_slots = r.ring_slots.max(rec.ring_slots);
                })
                .or_insert(rec);
        });
        plan
    }

    /// Re-applies an adaptive sizing plan to *live* bindings at a window
    /// boundary: classes below their recommended A-stack count grow
    /// (overflow allocations, Section 5.2) up to it. Ring depths are
    /// import-time-only and are not resized here. Each touched interface
    /// emits one [`replay::kind::ADAPT`] decision, so a recorded run that
    /// rebalances mid-flight still replays byte-identically.
    ///
    /// Returns the number of A-stacks allocated.
    pub fn apply_adapt(&self, plan: &crate::adapt::AdaptPlan) -> usize {
        let mut grown = 0usize;
        self.bindings.for_each(|state| {
            let Some(rec) = plan.get(&state.interface.name) else {
                return;
            };
            let mut touched = false;
            for ci in 0..state.astacks.classes().len() {
                let mut have = state.astacks.class_count(ci);
                while have < rec.astacks as usize {
                    let idx = state
                        .astacks
                        .grow(ci, &self.kernel, &state.client, &state.server);
                    state.astacks.release(idx);
                    have += 1;
                    grown += 1;
                    touched = true;
                }
            }
            if touched && !self.rr.is_live() {
                self.rr
                    .stream("adapt")
                    .emit(replay::kind::ADAPT, crate::adapt::AdaptPlan::pack(rec));
            }
        });
        grown
    }

    /// True if an exporter has registered `name` with the name server.
    pub fn exports(&self, name: &str) -> bool {
        self.names.lookup(name).is_some()
    }

    /// Kernel-side Binding Object validation ("must be presented to the
    /// kernel at each call").
    pub fn validate_binding(&self, handle: RawHandle) -> Result<Arc<BindingState>, CallError> {
        let state = self.bindings.get(handle)?;
        if state.is_revoked() {
            return Err(CallError::BindingRevoked);
        }
        Ok(state)
    }

    /// The E-stack pool of a server domain.
    ///
    /// Bindings cache the pool at import time ([`BindingState::estack_pool`]),
    /// so calls never come here — this map is consulted at bind and
    /// termination time only.
    pub fn estack_pool(&self, server: &Arc<Domain>) -> Arc<EStackPool> {
        firefly::meter::note_global_lock();
        if let Some(pool) = self.estacks.read().get(&server.id()) {
            return Arc::clone(pool);
        }
        firefly::meter::note_global_lock();
        let mut pools = self.estacks.write();
        Arc::clone(pools.entry(server.id()).or_insert_with(|| {
            let pool = Arc::new(EStackPool::new(
                Arc::clone(server),
                self.config.estack_size,
                self.config.max_estacks,
            ));
            pool.attach_replay(&self.rr);
            // Adopt the pool's live busy gauge so exports see "E-stacks in
            // a call right now" per server domain without a sweep.
            self.metrics.register_gauge(
                &format!("lrpc_estacks_busy:{}", server.name()),
                pool.busy_gauge().clone(),
            );
            pool
        }))
    }

    /// Terminates a domain, LRPC-level steps included (Section 5.3): every
    /// Binding Object associated with the domain — as client or server —
    /// is revoked, its exported interfaces are withdrawn from the name
    /// server, and the kernel collector then invalidates linkage records
    /// and reclaims resources.
    pub fn terminate_domain(&self, domain: &Arc<Domain>) -> TerminationReport {
        // Revoke bindings first so no new calls can start.
        let revoked = self.bindings.revoke_matching(|s| s.involves(domain));
        for s in &revoked {
            s.revoke();
        }
        self.names
            .unregister_matching(|c| c.domain().id() == domain.id());
        firefly::meter::note_global_lock();
        self.estacks.write().remove(&domain.id());
        self.kernel.terminate_domain(domain)
    }

    /// Recovers from a server capturing the client's thread (Section 5.3):
    /// creates a replacement thread "whose initial state is that of the
    /// original captured thread as if it had just returned from the server
    /// procedure with a call-aborted exception". The captured thread is
    /// destroyed by the kernel when the server finally releases it.
    pub fn abandon_captured(&self, captured: &Arc<Thread>) -> Option<Arc<Thread>> {
        self.kernel.replace_captured_thread(captured)
    }

    /// Number of live bindings (diagnostics).
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Samples the runtime-wide observable state into the metrics registry
    /// and returns the resulting snapshot.
    ///
    /// A slow-path sweep (every shard, every binding, every CPU): gauges
    /// that components cannot cheaply maintain live — A-stack occupancy
    /// and wait-queue depth, TLB hit/miss totals, per-domain idle-cache
    /// counters, fault-plan event counts — are read here, point-in-time.
    /// Live handles (E-stack busy gauges, per-binding latency histograms,
    /// circuit-breaker state) are already registered and simply appear in
    /// the snapshot.
    pub fn collect_metrics(&self) -> obs::Snapshot {
        // A-stacks across every live binding.
        let mut astacks_total = 0usize;
        let mut astacks_free = 0usize;
        let mut astack_waiters = 0usize;
        let mut astack_wait_events = 0u64;
        let mut calls = 0u64;
        let mut failures = 0u64;
        let mut remote_calls = 0u64;
        let mut bulk_chunks_total = 0usize;
        let mut bulk_chunks_free = 0usize;
        let mut bulk_fallbacks = 0u64;
        self.bindings.for_each(|state| {
            astacks_total += state.astacks.total_count();
            astack_wait_events += state.astacks.total_stall_events();
            for ci in 0..state.astacks.classes().len() {
                astacks_free += state.astacks.free_count(ci);
                astack_waiters += state.astacks.waiters(ci);
            }
            if let Some(arena) = &state.bulk {
                bulk_chunks_total += arena.chunk_count();
                bulk_chunks_free += arena.free_count();
            }
            calls += state.stats.calls();
            failures += state.stats.failures();
            remote_calls += state.stats.remote_calls();
            bulk_fallbacks += state.stats.bulk_fallbacks();
        });
        let m = &self.metrics;
        m.gauge("lrpc_astacks_total").set(astacks_total as i64);
        m.gauge("lrpc_astacks_free").set(astacks_free as i64);
        m.gauge("lrpc_astack_waiters").set(astack_waiters as i64);
        m.gauge("lrpc_astack_wait_events")
            .set(astack_wait_events as i64);
        m.gauge("lrpc_bulk_chunks_total")
            .set(bulk_chunks_total as i64);
        m.gauge("lrpc_bulk_chunks_free")
            .set(bulk_chunks_free as i64);
        m.gauge("lrpc_bulk_fallbacks_total")
            .set(bulk_fallbacks as i64);
        m.gauge("lrpc_bindings_live")
            .set(self.bindings.len() as i64);
        m.gauge("lrpc_calls_total").set(calls as i64);
        m.gauge("lrpc_call_failures_total").set(failures as i64);
        m.gauge("lrpc_remote_calls_total").set(remote_calls as i64);

        // TLB totals across the machine's CPUs.
        let machine = self.kernel.machine();
        let (mut tlb_hits, mut tlb_misses) = (0u64, 0u64);
        for cpu in machine.cpus() {
            tlb_hits += cpu.tlb_hits();
            tlb_misses += cpu.tlb_misses();
        }
        m.gauge("firefly_tlb_hits").set(tlb_hits as i64);
        m.gauge("firefly_tlb_misses").set(tlb_misses as i64);

        // The Section 3.4 domain-caching counters, summed over live
        // domains.
        let (mut idle_hits, mut idle_misses) = (0u64, 0u64);
        for d in self.kernel.domains() {
            idle_hits += d.idle_hits();
            idle_misses += d.idle_misses();
        }
        m.gauge("lrpc_domain_cache_hits").set(idle_hits as i64);
        m.gauge("lrpc_domain_cache_misses").set(idle_misses as i64);

        // Chaos plane: injected fault events so far, if a plan is live.
        if let Some(plan) = self.fault_plan() {
            m.gauge("fault_events_total").set(plan.event_count() as i64);
        }

        // Flight-recorder overwrite loss (process-wide: rings are
        // per-thread, not per-runtime). A true counter, advanced by the
        // delta since the last sweep, so tail attribution can report span
        // coverage instead of silently sampling.
        let dropped = m.counter("obs_flight_dropped_total");
        dropped.add(obs::flight::dropped_total().saturating_sub(dropped.get()));

        m.snapshot()
    }
}

/// Builder for test and benchmark runtimes.
///
/// The ~15 call sites that used to hand-roll
/// `RuntimeConfig { domain_caching: false, .. }` plus a machine and a
/// kernel share this one constructor instead. Defaults: a single-CPU
/// C-VAX Firefly, the default [`RuntimeConfig`], a live replay session.
pub struct TestRuntime {
    machine: Option<Arc<firefly::cpu::Machine>>,
    cpus: usize,
    config: RuntimeConfig,
    session: Arc<replay::Session>,
}

impl Default for TestRuntime {
    fn default() -> TestRuntime {
        TestRuntime::new()
    }
}

impl TestRuntime {
    /// Starts a builder with the defaults above.
    pub fn new() -> TestRuntime {
        TestRuntime {
            machine: None,
            cpus: 1,
            config: RuntimeConfig::default(),
            session: replay::Session::live(),
        }
    }

    /// Number of simulated CPUs (ignored if [`TestRuntime::machine`] is
    /// also set).
    pub fn cpus(mut self, n: usize) -> TestRuntime {
        self.cpus = n;
        self
    }

    /// An explicit machine (tagged-TLB ablations, custom cost models).
    pub fn machine(mut self, machine: Arc<firefly::cpu::Machine>) -> TestRuntime {
        self.machine = Some(machine);
        self
    }

    /// Toggles the Section 3.4 idle-processor optimization.
    pub fn domain_caching(mut self, on: bool) -> TestRuntime {
        self.config.domain_caching = on;
        self
    }

    /// How long an importer waits for the exporter's clerk.
    pub fn import_timeout(mut self, timeout: Duration) -> TestRuntime {
        self.config.import_timeout = timeout;
        self
    }

    /// The A-stack exhaustion policy.
    pub fn astack_policy(mut self, policy: AStackPolicy) -> TestRuntime {
        self.config.astack_policy = policy;
        self
    }

    /// How A-stack regions are mapped.
    pub fn astack_mapping(mut self, mapping: AStackMapping) -> TestRuntime {
        self.config.astack_mapping = mapping;
        self
    }

    /// An adaptive sizing plan applied at import.
    pub fn adapt(mut self, plan: Arc<crate::adapt::AdaptPlan>) -> TestRuntime {
        self.config.adapt = Some(plan);
        self
    }

    /// A record or replay session.
    pub fn session(mut self, session: Arc<replay::Session>) -> TestRuntime {
        self.session = session;
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Arc<LrpcRuntime> {
        let machine = self.machine.unwrap_or_else(|| {
            firefly::cpu::Machine::new(self.cpus, firefly::cost::CostModel::cvax_firefly())
        });
        LrpcRuntime::with_session(Kernel::new(machine), self.config, self.session)
    }
}
