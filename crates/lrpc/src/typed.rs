//! A typed call-builder over [`crate::Binding`].
//!
//! The raw binding API takes `&[Value]` and returns `Option<Value>`; this
//! module adds an ergonomic, *statically readable* layer that checks each
//! argument against the interface's declared types as it is supplied — the
//! same conformance the generated stubs enforce, surfaced at the API
//! boundary where an application programmer can see it.
//!
//! # Examples
//!
//! ```
//! use firefly::cpu::Machine;
//! use idl::wire::Value;
//! use kernel::kernel::Kernel;
//! use lrpc::{Handler, LrpcRuntime, Reply, ServerCtx};
//!
//! let rt = LrpcRuntime::new(Kernel::new(Machine::cvax_firefly()));
//! let server = rt.kernel().create_domain("math");
//! rt.export(
//!     &server,
//!     "interface Math { procedure Add(a: int32, b: int32) -> int32; }",
//!     vec![Box::new(|_: &ServerCtx, args: &[Value]| {
//!         let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else { unreachable!() };
//!         Ok(Reply::value(Value::Int32(a + b)))
//!     }) as Handler],
//! )
//! .unwrap();
//! let client = rt.kernel().create_domain("app");
//! let thread = rt.kernel().spawn_thread(&client);
//! let binding = rt.import(&client, "Math").unwrap();
//!
//! let sum: i32 = binding
//!     .invoke("Add")
//!     .unwrap()
//!     .arg(2i32)
//!     .arg(3i32)
//!     .call(0, &thread)
//!     .unwrap()
//!     .ret_i32()
//!     .unwrap();
//! assert_eq!(sum, 5);
//! ```

use std::sync::Arc;

use idl::types::Ty;
use idl::wire::Value;
use kernel::thread::Thread;

use crate::binding::Binding;
use crate::call::CallOutcome;
use crate::error::CallError;

/// Conversion of Rust values into IDL [`Value`]s.
pub trait IntoValue {
    /// The IDL value.
    fn into_value(self) -> Value;
    /// True if this value conforms to the declared type.
    fn conforms(value: &Value, ty: &Ty) -> bool;
}

impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Int32(self)
    }

    fn conforms(value: &Value, ty: &Ty) -> bool {
        matches!((value, ty), (Value::Int32(_), Ty::Int32))
    }
}

impl IntoValue for i16 {
    fn into_value(self) -> Value {
        Value::Int16(self)
    }

    fn conforms(value: &Value, ty: &Ty) -> bool {
        matches!((value, ty), (Value::Int16(_), Ty::Int16))
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }

    fn conforms(value: &Value, ty: &Ty) -> bool {
        matches!((value, ty), (Value::Bool(_), Ty::Bool))
    }
}

impl IntoValue for u8 {
    fn into_value(self) -> Value {
        Value::Byte(self)
    }

    fn conforms(value: &Value, ty: &Ty) -> bool {
        matches!((value, ty), (Value::Byte(_), Ty::Byte))
    }
}

impl IntoValue for Vec<u8> {
    fn into_value(self) -> Value {
        Value::Var(self)
    }

    fn conforms(value: &Value, ty: &Ty) -> bool {
        match (value, ty) {
            (Value::Var(v), Ty::VarBytes(max)) => v.len() <= *max,
            _ => false,
        }
    }
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }

    fn conforms(_: &Value, _: &Ty) -> bool {
        // Raw values defer to stub-time checking.
        true
    }
}

/// A call in preparation: procedure resolved, arguments accumulating.
pub struct TypedCall<'a> {
    binding: &'a Binding,
    proc_index: usize,
    args: Vec<Value>,
    error: Option<CallError>,
}

impl<'a> TypedCall<'a> {
    pub(crate) fn new(binding: &'a Binding, proc_index: usize) -> TypedCall<'a> {
        TypedCall {
            binding,
            proc_index,
            args: Vec::new(),
            error: None,
        }
    }

    fn declared_ty(&self) -> Option<&Ty> {
        let proc = self.binding.interface().procs.get(self.proc_index)?;
        proc.def.params.get(self.args.len()).map(|p| &p.ty)
    }

    /// Supplies the next argument, checking it against the declared
    /// parameter type. Type errors are deferred to [`TypedCall::call`] so
    /// the builder chains cleanly.
    pub fn arg<T: IntoValue>(mut self, v: T) -> TypedCall<'a> {
        if self.error.is_some() {
            return self;
        }
        let value = v.into_value();
        match self.declared_ty() {
            Some(ty) if T::conforms(&value, ty) => self.args.push(value),
            Some(ty) => {
                self.error = Some(CallError::ServerFault(format!(
                    "argument {} does not conform to declared type {ty}",
                    self.args.len()
                )));
            }
            None => {
                self.error = Some(CallError::ServerFault(format!(
                    "too many arguments (procedure declares {})",
                    self.binding.interface().procs[self.proc_index]
                        .def
                        .params
                        .len()
                )));
            }
        }
        self
    }

    /// Supplies a placeholder for an `out` parameter.
    pub fn out(mut self) -> TypedCall<'a> {
        if self.error.is_some() {
            return self;
        }
        if let Some(ty) = self.declared_ty() {
            self.args.push(Value::zero_of(ty));
        } else {
            self.error = Some(CallError::ServerFault("too many arguments".into()));
        }
        self
    }

    /// True if every stub half of this procedure was specialized into a
    /// compiled copy plan at import time — i.e. the call will execute
    /// fused bulk moves with no per-call heap allocation rather than the
    /// op-by-op stub interpreter. Useful when auditing a hot path.
    pub fn uses_compiled_stubs(&self) -> bool {
        self.binding
            .stub_plans()
            .procs
            .get(self.proc_index)
            .is_some_and(|p| p.fully_compiled())
    }

    /// Makes the LRPC.
    pub fn call(self, cpu_id: usize, thread: &Arc<Thread>) -> Result<TypedOutcome, CallError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let out = self
            .binding
            .call_indexed(cpu_id, thread, self.proc_index, &self.args)?;
        Ok(TypedOutcome { out })
    }

    /// Enqueues this call onto an open [`crate::ring::RingBatch`] instead
    /// of trapping immediately. The returned future resolves when the
    /// batch is submitted and its completion ring reaped.
    pub fn enqueue(
        self,
        batch: &mut crate::ring::RingBatch<'_>,
    ) -> Result<crate::ring::CallFuture, CallError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !std::ptr::eq(batch.binding(), self.binding) {
            return Err(CallError::ServerFault(
                "batch belongs to a different binding".into(),
            ));
        }
        Ok(batch.call_async_indexed(self.proc_index, self.args))
    }
}

/// A completed typed call.
#[derive(Debug)]
pub struct TypedOutcome {
    /// The raw outcome.
    pub out: CallOutcome,
}

impl TypedOutcome {
    /// The `int32` return value.
    pub fn ret_i32(&self) -> Result<i32, CallError> {
        match self.out.ret {
            Some(Value::Int32(v)) => Ok(v),
            ref other => Err(CallError::ServerFault(format!(
                "expected int32 return, got {other:?}"
            ))),
        }
    }

    /// The `bool` return value.
    pub fn ret_bool(&self) -> Result<bool, CallError> {
        match self.out.ret {
            Some(Value::Bool(v)) => Ok(v),
            ref other => Err(CallError::ServerFault(format!(
                "expected bool return, got {other:?}"
            ))),
        }
    }

    /// The bytes of out-parameter `index`.
    pub fn out_bytes(&self, index: usize) -> Result<&[u8], CallError> {
        self.out
            .outs
            .iter()
            .find(|(i, _)| *i == index)
            .and_then(|(_, v)| match v {
                Value::Bytes(b) | Value::Var(b) => Some(b.as_slice()),
                _ => None,
            })
            .ok_or_else(|| CallError::ServerFault(format!("no byte out-parameter {index}")))
    }

    /// Simulated time the call took.
    pub fn elapsed(&self) -> firefly::time::Nanos {
        self.out.elapsed
    }
}

impl Binding {
    /// Starts a typed call to the named procedure.
    pub fn invoke(&self, proc: &str) -> Result<TypedCall<'_>, CallError> {
        let index = self.proc_index(proc)?;
        Ok(TypedCall::new(self, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Handler, LrpcRuntime, Reply, ServerCtx};
    use firefly::cpu::Machine;
    use kernel::kernel::Kernel;

    fn env() -> (Arc<LrpcRuntime>, Arc<Thread>, Binding) {
        let rt = LrpcRuntime::new(Kernel::new(Machine::cvax_firefly()));
        let server = rt.kernel().create_domain("svc");
        rt.export(
            &server,
            r#"interface Svc {
                procedure Add(a: int32, b: int32) -> int32;
                procedure Read(h: int32, buf: out bytes[8]) -> int32;
                procedure Store(data: in var bytes[16] noninterpreted) -> int32;
                procedure Walk(t: in tree);
            }"#,
            vec![
                Box::new(|_: &ServerCtx, args: &[Value]| {
                    let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                        unreachable!()
                    };
                    Ok(Reply::value(Value::Int32(a + b)))
                }) as Handler,
                Box::new(|_: &ServerCtx, _: &[Value]| {
                    Ok(Reply::value(Value::Int32(8)).with_out(1, Value::Bytes(vec![9; 8])))
                }) as Handler,
                Box::new(|_: &ServerCtx, args: &[Value]| {
                    let Value::Var(v) = &args[0] else {
                        unreachable!()
                    };
                    Ok(Reply::value(Value::Int32(v.len() as i32)))
                }) as Handler,
                Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
            ],
        )
        .unwrap();
        let client = rt.kernel().create_domain("app");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Svc").unwrap();
        (rt, thread, binding)
    }

    #[test]
    fn typed_add() {
        let (_rt, thread, binding) = env();
        let sum = binding
            .invoke("Add")
            .unwrap()
            .arg(40i32)
            .arg(2i32)
            .call(0, &thread)
            .unwrap();
        assert_eq!(sum.ret_i32().unwrap(), 42);
        assert!(sum.elapsed() > firefly::Nanos::ZERO);
    }

    #[test]
    fn fixed_and_variable_procs_report_compiled_stubs_and_complex_ones_do_not() {
        let (_rt, _thread, binding) = env();
        assert!(binding.invoke("Add").unwrap().uses_compiled_stubs());
        assert!(binding.invoke("Read").unwrap().uses_compiled_stubs());
        // Inline variable-size parameters lower to length-prefixed plan
        // steps now, so `Store` compiles too.
        assert!(binding.invoke("Store").unwrap().uses_compiled_stubs());
        // Complex (pointer-rich) types still force the interpreter.
        assert!(!binding.invoke("Walk").unwrap().uses_compiled_stubs());
    }

    #[test]
    fn out_parameters_via_placeholder() {
        let (_rt, thread, binding) = env();
        let out = binding
            .invoke("Read")
            .unwrap()
            .arg(1i32)
            .out()
            .call(0, &thread)
            .unwrap();
        assert_eq!(out.ret_i32().unwrap(), 8);
        assert_eq!(out.out_bytes(1).unwrap(), &[9; 8]);
    }

    #[test]
    fn var_bytes_length_is_checked_at_the_builder() {
        let (_rt, thread, binding) = env();
        let ok = binding
            .invoke("Store")
            .unwrap()
            .arg(vec![1u8; 16])
            .call(0, &thread)
            .unwrap();
        assert_eq!(ok.ret_i32().unwrap(), 16);
        let err = binding
            .invoke("Store")
            .unwrap()
            .arg(vec![1u8; 17])
            .call(0, &thread)
            .unwrap_err();
        assert!(matches!(err, CallError::ServerFault(_)), "got {err}");
    }

    #[test]
    fn type_mismatches_are_reported_before_the_call() {
        let (_rt, thread, binding) = env();
        let err = binding
            .invoke("Add")
            .unwrap()
            .arg(true) // bool where int32 is declared
            .arg(2i32)
            .call(0, &thread)
            .unwrap_err();
        assert!(matches!(err, CallError::ServerFault(_)));
        // Too many arguments.
        let err = binding
            .invoke("Add")
            .unwrap()
            .arg(1i32)
            .arg(2i32)
            .arg(3i32)
            .call(0, &thread)
            .unwrap_err();
        assert!(matches!(err, CallError::ServerFault(_)));
    }

    #[test]
    fn unknown_procedure_fails_at_invoke() {
        let (_rt, _thread, binding) = env();
        assert!(binding.invoke("Nope").is_err());
    }

    #[test]
    fn wrong_return_extractor_errors() {
        let (_rt, thread, binding) = env();
        let out = binding
            .invoke("Add")
            .unwrap()
            .arg(1i32)
            .arg(1i32)
            .call(0, &thread)
            .unwrap();
        assert!(out.ret_bool().is_err());
        assert!(out.out_bytes(0).is_err());
    }
}
