//! Execution stacks (E-stacks).
//!
//! "Privately mapped E-stacks enable a thread to safely cross between
//! domains" (Section 3.2). E-stacks are large (tens of kilobytes) and are
//! therefore managed lazily: "LRPC delays the A-stack/E-stack association
//! until it is needed ... When the call returns, the E-stack and A-stack
//! remain associated with one another so that they might be used together
//! soon for another call ... Whenever the supply of E-stacks for a given
//! server domain runs low, the kernel reclaims those associated with
//! A-stacks that have not been recently used."

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use firefly::mem::Region;
use firefly::vm::Protection;
use kernel::kernel::Kernel;
use kernel::Domain;
use parking_lot::Mutex;

/// Default E-stack size: 16 KiB ("E-stacks can be large (tens of
/// kilobytes)").
pub const DEFAULT_ESTACK_SIZE: usize = 16 * 1024;

/// Default cap on E-stacks per server domain before LRU reclamation kicks
/// in ("must be managed conservatively; otherwise a server's address space
/// could be exhausted by just a few clients").
pub const DEFAULT_MAX_ESTACKS: usize = 8;

struct Assoc {
    estack: Arc<Region>,
    last_used: u64,
    in_call: bool,
}

struct PoolInner {
    free: Vec<Arc<Region>>,
    /// A-stack key → associated E-stack. The key must be unique across
    /// *all* bindings to the server (region id + index), not just within
    /// one binding — two clients' `A-stack 0` are different stacks.
    assoc: HashMap<u64, Assoc>,
    tick: u64,
    allocated: usize,
    peak_allocated: usize,
    lazy_hits: u64,
    allocations: u64,
    reclamations: u64,
}

/// The E-stack pool of one server domain.
///
/// The pool lock is per-server (a shard of the machine-wide E-stack
/// supply), reported to [`firefly::meter::note_sharded_lock`]; bindings
/// cache an `Arc` to their server's pool so the call path never consults
/// a global map to find it.
pub struct EStackPool {
    server: Arc<Domain>,
    estack_size: usize,
    max_estacks: usize,
    inner: Mutex<PoolInner>,
    /// Mirrors the number of in-call associations as a metrics gauge.
    /// Maintained on the in_call flips inside the pool lock, so it always
    /// agrees with [`EStackPool::busy_count`] once calls quiesce. The
    /// runtime adopts it into its registry when the pool is created.
    busy: obs::Gauge,
    /// Record/replay stream for association outcomes
    /// (`estack:{server name}`).
    rr: OnceLock<replay::Handle>,
}

/// Usage statistics (for the lazy-vs-static ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EStackStats {
    /// E-stacks currently allocated in the server's address space.
    pub allocated: usize,
    /// High-water mark of allocations.
    pub peak_allocated: usize,
    /// Calls that reused an existing A-stack/E-stack association.
    pub lazy_hits: u64,
    /// Fresh allocations performed.
    pub allocations: u64,
    /// Associations reclaimed under address-space pressure.
    pub reclamations: u64,
}

impl EStackPool {
    /// Creates an empty pool for `server`.
    pub fn new(server: Arc<Domain>, estack_size: usize, max_estacks: usize) -> EStackPool {
        EStackPool {
            server,
            estack_size: estack_size.max(firefly::mem::PAGE_SIZE),
            max_estacks: max_estacks.max(1),
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                assoc: HashMap::new(),
                tick: 0,
                allocated: 0,
                peak_allocated: 0,
                lazy_hits: 0,
                allocations: 0,
                reclamations: 0,
            }),
            busy: obs::Gauge::new(),
            rr: OnceLock::new(),
        }
    }

    /// Attaches a record/replay session: every association outcome (which
    /// A-stack key resolved, and whether a fresh allocation was needed)
    /// flows through the `estack:{server}` stream. Live sessions are
    /// ignored; a second attach is ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() {
            return;
        }
        let _ = self
            .rr
            .set(session.stream(&format!("estack:{}", self.server.name())));
    }

    /// The live "E-stacks in a call right now" gauge (a cheap clone of it
    /// can be registered in a metrics registry).
    pub fn busy_gauge(&self) -> &obs::Gauge {
        &self.busy
    }

    /// Finds the E-stack for a call arriving on the A-stack identified by
    /// `astack_key` (globally unique across bindings), applying the lazy-
    /// association rules. Returns the E-stack and whether a fresh
    /// allocation was needed (the slow path).
    pub fn get_for_call(&self, kernel: &Kernel, astack_key: u64) -> (Arc<Region>, bool) {
        let (estack, fresh) = self.get_for_call_inner(kernel, astack_key);
        if let Some(h) = self.rr.get() {
            // Which A-stack asked and whether the association missed (a
            // fresh allocation) is the order-sensitive outcome here.
            h.emit(
                replay::kind::ESTACK_GET,
                (astack_key << 1) | u64::from(fresh),
            );
        }
        (estack, fresh)
    }

    fn get_for_call_inner(&self, kernel: &Kernel, astack_key: u64) -> (Arc<Region>, bool) {
        firefly::meter::note_sharded_lock();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;

        // Fast path: the association from a previous call still holds.
        if let Some(a) = inner.assoc.get_mut(&astack_key) {
            a.last_used = tick;
            if !a.in_call {
                self.busy.inc();
            }
            a.in_call = true;
            let estack = Arc::clone(&a.estack);
            inner.lazy_hits += 1;
            return (estack, false);
        }

        // An unassociated E-stack lying around?
        if let Some(estack) = inner.free.pop() {
            self.busy.inc();
            inner.assoc.insert(
                astack_key,
                Assoc {
                    estack: Arc::clone(&estack),
                    last_used: tick,
                    in_call: true,
                },
            );
            return (estack, false);
        }

        // Supply running low? Reclaim the least-recently-used idle
        // association before allocating past the cap.
        if inner.allocated >= self.max_estacks {
            let victim = inner
                .assoc
                .iter()
                .filter(|(_, a)| !a.in_call)
                .min_by_key(|(_, a)| a.last_used)
                .map(|(&k, _)| k);
            if let Some(victim) = victim {
                let a = inner.assoc.remove(&victim).expect("victim exists");
                inner.reclamations += 1;
                self.busy.inc();
                inner.assoc.insert(
                    astack_key,
                    Assoc {
                        estack: Arc::clone(&a.estack),
                        last_used: tick,
                        in_call: true,
                    },
                );
                return (a.estack, false);
            }
            // Every E-stack is mid-call: allocation past the cap is the
            // only option.
        }

        // Allocate a fresh E-stack out of the server domain.
        let estack = kernel.alloc_mapped(
            &self.server,
            format!("estack-{}", self.server.name()),
            self.estack_size,
            Protection::ReadWrite,
        );
        inner.allocated += 1;
        inner.peak_allocated = inner.peak_allocated.max(inner.allocated);
        inner.allocations += 1;
        self.busy.inc();
        inner.assoc.insert(
            astack_key,
            Assoc {
                estack: Arc::clone(&estack),
                last_used: tick,
                in_call: true,
            },
        );
        (estack, true)
    }

    /// Marks the call on `astack_key` finished; the association is kept
    /// for reuse.
    pub fn end_call(&self, astack_key: u64) {
        firefly::meter::note_sharded_lock();
        if let Some(a) = self.inner.lock().assoc.get_mut(&astack_key) {
            if a.in_call {
                self.busy.dec();
            }
            a.in_call = false;
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> EStackStats {
        firefly::meter::note_sharded_lock();
        let inner = self.inner.lock();
        EStackStats {
            allocated: inner.allocated,
            peak_allocated: inner.peak_allocated,
            lazy_hits: inner.lazy_hits,
            allocations: inner.allocations,
            reclamations: inner.reclamations,
        }
    }

    /// Number of E-stacks currently associated with an *in-progress*
    /// call. Zero between calls — the invariant the chaos tests assert
    /// after every fault schedule (no orphaned in-call association may
    /// survive a failed or aborted call).
    pub fn busy_count(&self) -> usize {
        firefly::meter::note_sharded_lock();
        self.inner
            .lock()
            .assoc
            .values()
            .filter(|a| a.in_call)
            .count()
    }

    /// The configured E-stack size.
    pub fn estack_size(&self) -> usize {
        self.estack_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    fn setup(max: usize) -> (Arc<Kernel>, EStackPool) {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let server = k.create_domain("server");
        let pool = EStackPool::new(server, 4096, max);
        (k, pool)
    }

    #[test]
    fn first_call_allocates_second_reuses() {
        let (k, pool) = setup(4);
        let (e1, fresh1) = pool.get_for_call(&k, 0);
        assert!(fresh1);
        pool.end_call(0);
        let (e2, fresh2) = pool.get_for_call(&k, 0);
        assert!(!fresh2, "the association persists across calls");
        assert_eq!(e1.id(), e2.id());
        let s = pool.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.lazy_hits, 1);
    }

    #[test]
    fn distinct_astacks_get_distinct_estacks() {
        let (k, pool) = setup(4);
        let (e1, _) = pool.get_for_call(&k, 0);
        let (e2, _) = pool.get_for_call(&k, 1);
        assert_ne!(e1.id(), e2.id());
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn lru_reclamation_under_pressure() {
        let (k, pool) = setup(2);
        let (e0, _) = pool.get_for_call(&k, 0);
        pool.end_call(0);
        let (_e1, _) = pool.get_for_call(&k, 1);
        pool.end_call(1);
        // A-stack 0's association is the least recently used; a third
        // A-stack reclaims it instead of allocating a third E-stack.
        let (e2, fresh) = pool.get_for_call(&k, 2);
        assert!(!fresh);
        assert_eq!(e2.id(), e0.id(), "the LRU association is recycled");
        let s = pool.stats();
        assert_eq!(s.allocated, 2);
        assert_eq!(s.reclamations, 1);
        // A-stack 0 lost its association: next call re-associates.
        pool.end_call(2);
        let (_e, _) = pool.get_for_call(&k, 0);
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn in_call_estacks_are_never_reclaimed() {
        let (k, pool) = setup(1);
        let (e0, _) = pool.get_for_call(&k, 0);
        // A-stack 0 is mid-call; a concurrent call must allocate past the
        // cap rather than steal e0.
        let (e1, fresh) = pool.get_for_call(&k, 1);
        assert!(fresh);
        assert_ne!(e0.id(), e1.id());
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn busy_gauge_tracks_in_call_associations() {
        let (k, pool) = setup(4);
        assert_eq!(pool.busy_gauge().get(), 0);
        pool.get_for_call(&k, 0);
        pool.get_for_call(&k, 1);
        assert_eq!(pool.busy_gauge().get(), 2);
        assert_eq!(pool.busy_gauge().get() as usize, pool.busy_count());
        pool.end_call(0);
        pool.end_call(0); // double end must not double-decrement
        assert_eq!(pool.busy_gauge().get(), 1);
        pool.end_call(1);
        assert_eq!(pool.busy_gauge().get(), 0);
        assert_eq!(pool.busy_count(), 0);
    }

    #[test]
    fn peak_allocation_tracks_high_water() {
        let (k, pool) = setup(8);
        for i in 0..5 {
            pool.get_for_call(&k, i);
        }
        assert_eq!(pool.stats().peak_allocated, 5);
    }
}
