//! LRPC call errors and exceptions.

use firefly::error::MemFault;
use idl::stubvm::StubError;
use kernel::objects::HandleError;

/// An error or exception raised during binding or calling.
#[derive(Debug)]
pub enum CallError {
    /// The Binding Object failed kernel validation (forged, stale, or
    /// revoked): "The kernel can detect a forged Binding Object, so clients
    /// cannot bypass the binding phase" (Section 3.1).
    InvalidBinding(HandleError),
    /// The binding exists but has been revoked (domain termination).
    BindingRevoked,
    /// The procedure identifier is out of range for the interface.
    BadProcedure {
        /// The offending index.
        index: usize,
    },
    /// The presented A-stack failed validation (outside the bound region,
    /// misaligned, or not one of the binding's A-stacks).
    BadAStack,
    /// The A-stack/linkage pair is already in use by another thread
    /// ("ensures that no other thread is currently using that
    /// A-stack/linkage pair", Section 3.2).
    AStackBusy,
    /// All of the procedure's A-stacks are in use and the wait policy gave
    /// up (Section 5.2).
    NoAStacks,
    /// The call-failed exception of Section 5.3: a domain involved in the
    /// call terminated while the call was outstanding.
    CallFailed,
    /// The call-aborted exception of Section 5.3: the client abandoned this
    /// captured thread; the thread is destroyed on release.
    CallAborted,
    /// The target (or calling) domain is not active.
    DomainDead,
    /// Stub execution failed (encoding, conformance, frame fault).
    Stub(StubError),
    /// A raw memory fault escaped the stubs.
    Mem(MemFault),
    /// The interface was not exported within the import timeout.
    ImportTimeout {
        /// The interface name that was sought.
        name: String,
    },
    /// The server procedure itself reported a failure.
    ServerFault(String),
    /// The binding is to a remote server but no remote transport was
    /// configured (Section 5.1's conventional-RPC branch).
    NoRemoteTransport,
    /// The conventional-RPC transport gave up (e.g. a packet was lost
    /// more times than the retransmission budget allows).
    Network(String),
    /// The binding's circuit breaker is open: recent consecutive failures
    /// tripped it, and the call was rejected without being attempted.
    CircuitOpen,
}

impl core::fmt::Display for CallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CallError::InvalidBinding(e) => write!(f, "invalid binding object: {e}"),
            CallError::BindingRevoked => write!(f, "binding has been revoked"),
            CallError::BadProcedure { index } => {
                write!(f, "procedure identifier {index} out of range")
            }
            CallError::BadAStack => write!(f, "A-stack failed validation"),
            CallError::AStackBusy => write!(f, "A-stack/linkage pair already in use"),
            CallError::NoAStacks => write!(f, "no A-stack available"),
            CallError::CallFailed => write!(f, "call-failed exception (domain terminated)"),
            CallError::CallAborted => write!(f, "call-aborted exception (thread abandoned)"),
            CallError::DomainDead => write!(f, "domain is not active"),
            CallError::Stub(e) => write!(f, "stub failure: {e}"),
            CallError::Mem(e) => write!(f, "memory fault: {e}"),
            CallError::ImportTimeout { name } => {
                write!(f, "interface `{name}` was not exported in time")
            }
            CallError::ServerFault(msg) => write!(f, "server fault: {msg}"),
            CallError::NoRemoteTransport => {
                write!(f, "remote binding but no remote transport configured")
            }
            CallError::Network(msg) => write!(f, "network failure: {msg}"),
            CallError::CircuitOpen => write!(f, "circuit breaker open; call rejected"),
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::InvalidBinding(e) => Some(e),
            CallError::Stub(e) => Some(e),
            CallError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StubError> for CallError {
    fn from(e: StubError) -> CallError {
        CallError::Stub(e)
    }
}

impl From<MemFault> for CallError {
    fn from(e: MemFault) -> CallError {
        CallError::Mem(e)
    }
}

impl From<HandleError> for CallError {
    fn from(e: HandleError) -> CallError {
        CallError::InvalidBinding(e)
    }
}
