//! Client-side recovery policies.
//!
//! Section 5.3 gives LRPC its failure *semantics* — call-failed when a
//! domain terminates mid-call, call-aborted when a client abandons a
//! captured thread, binding revocation so "no further calls" cross a dead
//! domain's boundary. This module builds the client-side *policies* on top
//! of those mechanisms:
//!
//! * a per-call **deadline**: a watchdog detects a thread stuck inside a
//!   hung or terminated server and drives the real call-aborted path
//!   ([`crate::LrpcRuntime::abandon_captured`] → replacement thread);
//! * a **retry policy** with capped exponential backoff and seeded
//!   jitter, applied only to procedures declared `[idempotent = 1]` in
//!   the IDL — backoff is charged to the *virtual* clock, keeping chaos
//!   runs deterministic;
//! * a per-binding **circuit breaker** that trips after consecutive
//!   binding-level failures, rejects a fixed number of calls while open
//!   (deterministic — no wall-clock cooldowns), and re-imports through
//!   the name server on its half-open probe;
//! * **graceful degradation**: when the local server is gone for good and
//!   a remote transport exports the same interface, the client falls back
//!   to the conventional-RPC path of Section 5.1.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use firefly::fault::splitmix64;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::thread::Thread;
use kernel::Domain;
use parking_lot::Mutex;

use crate::binding::Binding;
use crate::call::CallOutcome;
use crate::error::CallError;
use crate::runtime::LrpcRuntime;

/// Capped exponential backoff with deterministic jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Nanos,
    /// Backoff ceiling.
    pub max_backoff: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Nanos::from_micros(500),
            max_backoff: Nanos::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`
    /// capped at `max_backoff`, plus up to 25% seeded jitter.
    pub fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Nanos {
        let exp = self.base_backoff * 2u64.saturating_pow(attempt.saturating_sub(1));
        let capped = exp.min(self.max_backoff);
        let jitter_ns = if capped.is_zero() {
            0
        } else {
            splitmix64(jitter_state) % (capped.as_nanos() / 4).max(1)
        };
        capped + Nanos::from_nanos(jitter_ns)
    }

    /// True for errors worth retrying at all: transient resource
    /// exhaustion, network trouble, or a one-off server fault. Failures
    /// that indicate the *binding* is dead (revocation, termination) are
    /// the circuit breaker's and re-import's business, not blind retry's.
    pub fn is_retryable(e: &CallError) -> bool {
        matches!(
            e,
            CallError::NoAStacks
                | CallError::AStackBusy
                | CallError::Network(_)
                | CallError::ServerFault(_)
        )
    }
}

/// Circuit-breaker tunables.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive binding-level failures that trip the breaker.
    pub trip_after: u32,
    /// Calls rejected (with [`CallError::CircuitOpen`]) while open before
    /// the next call becomes the half-open probe. Counting calls instead
    /// of wall-clock time keeps chaos runs bit-reproducible.
    pub cooldown_rejects: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            cooldown_rejects: 2,
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are being counted.
    Closed,
    /// Calls are rejected outright.
    Open,
    /// The next call is a probe; its outcome closes or reopens the
    /// breaker.
    HalfOpen,
}

enum Inner {
    Closed { failures: u32 },
    Open { rejects_left: u32 },
    HalfOpen,
}

/// A deterministic per-binding circuit breaker.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    /// Mirrors the state as a gauge (0 = closed, 1 = open, 2 = half-open),
    /// updated at every transition while the inner lock is held so
    /// exported snapshots never show a state the breaker was not in.
    state_gauge: obs::Gauge,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner::Closed { failures: 0 }),
            state_gauge: obs::Gauge::new(),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        match *self.inner.lock() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// The live state gauge (0 = closed, 1 = open, 2 = half-open); a
    /// clone can be adopted into a metrics registry.
    pub fn state_gauge(&self) -> &obs::Gauge {
        &self.state_gauge
    }

    fn gauge_value(inner: &Inner) -> i64 {
        match inner {
            Inner::Closed { .. } => 0,
            Inner::Open { .. } => 1,
            Inner::HalfOpen => 2,
        }
    }

    /// Gate for one call. `Ok(true)` means the call is the half-open
    /// probe (the caller should re-import before attempting it);
    /// `Ok(false)` is an ordinary admitted call.
    pub fn admit(&self) -> Result<bool, CallError> {
        let mut inner = self.inner.lock();
        match &mut *inner {
            Inner::Closed { .. } => Ok(false),
            Inner::HalfOpen => Ok(true),
            Inner::Open { rejects_left } => {
                if *rejects_left > 0 {
                    *rejects_left -= 1;
                    Err(CallError::CircuitOpen)
                } else {
                    *inner = Inner::HalfOpen;
                    self.state_gauge.set(Self::gauge_value(&inner));
                    Ok(true)
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and clears the
    /// failure count.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::Closed { failures: 0 };
        self.state_gauge.set(Self::gauge_value(&inner));
    }

    /// Reports a binding-level failure; trips the breaker after
    /// `trip_after` consecutive ones, and reopens it from half-open.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match &mut *inner {
            Inner::Closed { failures } => {
                *failures += 1;
                if *failures >= self.config.trip_after {
                    *inner = Inner::Open {
                        rejects_left: self.config.cooldown_rejects,
                    };
                }
            }
            Inner::HalfOpen => {
                *inner = Inner::Open {
                    rejects_left: self.config.cooldown_rejects,
                };
            }
            Inner::Open { .. } => {}
        }
        self.state_gauge.set(Self::gauge_value(&inner));
    }

    /// True for failures that should count against the breaker: the
    /// binding (or the domain behind it) is gone, not merely busy.
    pub fn counts(e: &CallError) -> bool {
        matches!(
            e,
            CallError::CallFailed
                | CallError::CallAborted
                | CallError::BindingRevoked
                | CallError::InvalidBinding(_)
                | CallError::DomainDead
                | CallError::ImportTimeout { .. }
        )
    }
}

/// Recovery tunables for a [`ResilientClient`].
#[derive(Clone, Debug, Default)]
pub struct RecoveryConfig {
    /// Host-time budget per attempt. When it expires the watchdog assumes
    /// the thread is captured by a hung/terminated server and abandons it
    /// (Section 5.3's call-aborted path). `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Retry policy for idempotent procedures.
    pub retry: RetryPolicy,
    /// Circuit-breaker settings.
    pub breaker: BreakerConfig,
    /// Fall back to the conventional-RPC transport when the local server
    /// is gone and the transport exports the interface.
    pub fallback_remote: bool,
    /// Seed for the retry jitter stream.
    pub jitter_seed: u64,
}

/// A client-side wrapper that applies deadline, retry, circuit-breaker
/// and degradation policies around a [`Binding`].
///
/// The wrapper owns the client's calling thread so the watchdog can swap
/// in the kernel-made replacement after abandoning a captured one. Worker
/// handles for calls still stuck inside a server are retained; once the
/// hang is released (e.g. [`firefly::fault::FaultPlan::release_hangs`]),
/// [`ResilientClient::drain`] joins them and surfaces their (aborted)
/// results to the invariant checks.
pub struct ResilientClient {
    rt: Arc<LrpcRuntime>,
    client_domain: Arc<Domain>,
    interface: String,
    binding: Mutex<Arc<Binding>>,
    thread: Mutex<Arc<Thread>>,
    breaker: CircuitBreaker,
    config: RecoveryConfig,
    jitter: Mutex<u64>,
    errors: Mutex<Vec<String>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    degraded: AtomicBool,
    aborted_calls: Mutex<u64>,
    /// Retries performed (registered with the runtime's metrics registry
    /// as `lrpc_retries_total:<interface>`).
    retries: obs::Counter,
}

impl ResilientClient {
    /// Imports `interface` into `client_domain` and wraps the binding.
    pub fn import(
        rt: &Arc<LrpcRuntime>,
        client_domain: &Arc<Domain>,
        interface: &str,
        config: RecoveryConfig,
    ) -> Result<ResilientClient, CallError> {
        let binding = Arc::new(rt.import(client_domain, interface)?);
        let thread = rt.kernel().spawn_thread(client_domain);
        let breaker = CircuitBreaker::new(config.breaker);
        rt.metrics().register_gauge(
            &format!("lrpc_breaker_state:{interface}"),
            breaker.state_gauge().clone(),
        );
        let retries = rt
            .metrics()
            .counter(&format!("lrpc_retries_total:{interface}"));
        Ok(ResilientClient {
            rt: Arc::clone(rt),
            client_domain: Arc::clone(client_domain),
            interface: interface.to_string(),
            binding: Mutex::new(binding),
            thread: Mutex::new(thread),
            breaker,
            jitter: Mutex::new(config.jitter_seed ^ 0x5245_5452_594A_5431u64),
            config,
            errors: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            degraded: AtomicBool::new(false),
            aborted_calls: Mutex::new(0),
            retries,
        })
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// True once the client has degraded to the remote transport.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Calls abandoned by the deadline watchdog so far.
    pub fn aborted_calls(&self) -> u64 {
        *self.aborted_calls.lock()
    }

    /// The client-observed error sequence, in call order — the
    /// reproducibility witness the chaos tests compare across runs.
    pub fn error_log(&self) -> Vec<String> {
        self.errors.lock().clone()
    }

    /// The current calling thread (changes after a watchdog abort).
    pub fn thread(&self) -> Arc<Thread> {
        Arc::clone(&self.thread.lock())
    }

    /// The current binding (changes after re-import or degradation).
    pub fn binding(&self) -> Arc<Binding> {
        Arc::clone(&self.binding.lock())
    }

    fn log_error(&self, proc: &str, e: &CallError) {
        self.errors.lock().push(format!("{proc}: {e}"));
    }

    /// One call under the full policy stack.
    pub fn call(&self, proc: &str, args: &[Value]) -> Result<CallOutcome, CallError> {
        // 1. Circuit breaker gate.
        let probe = match self.breaker.admit() {
            Ok(p) => p,
            Err(e) => {
                self.log_error(proc, &e);
                return Err(e);
            }
        };
        // 2. Half-open probe: re-import through the name server — the
        //    old binding may be revoked while a restarted server exports
        //    the same interface under a fresh clerk.
        if probe && !self.is_degraded() {
            match self.rt.import(&self.client_domain, &self.interface) {
                Ok(fresh) => *self.binding.lock() = Arc::new(fresh),
                Err(e) => {
                    self.breaker.on_failure();
                    self.log_error(proc, &e);
                    return self.try_degrade(proc, args, e);
                }
            }
        }

        let binding = self.binding();
        let index = match binding.proc_index(proc) {
            Ok(i) => i,
            Err(e) => {
                self.log_error(proc, &e);
                return Err(e);
            }
        };
        let idempotent = binding.interface().procs[index].pd.idempotent;
        let budget = if idempotent {
            self.config.retry.max_retries
        } else {
            0
        };

        let mut attempt = 0u32;
        loop {
            let result = self.attempt(&binding, index, args);
            match result {
                Ok(out) => {
                    self.breaker.on_success();
                    return Ok(out);
                }
                Err(e) => {
                    self.log_error(proc, &e);
                    if CircuitBreaker::counts(&e) {
                        self.breaker.on_failure();
                        return self.try_degrade(proc, args, e);
                    }
                    if attempt < budget && RetryPolicy::is_retryable(&e) {
                        attempt += 1;
                        self.retries.inc();
                        // Backoff burns *virtual* time: determinism is
                        // preserved and the latency shows up on the same
                        // clock every other cost uses.
                        let pause = self.config.retry.backoff(attempt, &mut self.jitter.lock());
                        self.rt.kernel().machine().cpu(0).charge(pause);
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One attempt, with the deadline watchdog when configured.
    fn attempt(
        &self,
        binding: &Arc<Binding>,
        index: usize,
        args: &[Value],
    ) -> Result<CallOutcome, CallError> {
        let thread = self.thread();
        let Some(deadline) = self.config.deadline else {
            return binding.call_indexed(0, &thread, index, args);
        };

        let (tx, rx) = mpsc::channel();
        let worker = {
            let binding = Arc::clone(binding);
            let thread = Arc::clone(&thread);
            let args = args.to_vec();
            std::thread::spawn(move || {
                let _ = tx.send(binding.call_indexed(0, &thread, index, &args));
            })
        };
        match rx.recv_timeout(deadline) {
            Ok(result) => {
                let _ = worker.join();
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The thread is stuck inside the server. Abandon it: the
                // kernel builds a replacement "as if it had just returned
                // from the server procedure with a call-aborted
                // exception" (Section 5.3); the captured original is
                // destroyed whenever the server finally releases it.
                match self.rt.abandon_captured(&thread) {
                    Some(replacement) => {
                        *self.thread.lock() = replacement;
                        *self.aborted_calls.lock() += 1;
                        self.workers.lock().push(worker);
                        Err(CallError::CallAborted)
                    }
                    None => {
                        // Not captured after all (merely slow); take the
                        // real result.
                        let result = rx.recv().unwrap_or(Err(CallError::CallAborted));
                        let _ = worker.join();
                        result
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = worker.join();
                Err(CallError::CallAborted)
            }
        }
    }

    /// Graceful degradation: if enabled and the interface is exported
    /// over the remote transport, swap the binding for a remote one and
    /// make the call through the conventional-RPC branch.
    fn try_degrade(
        &self,
        proc: &str,
        args: &[Value],
        original: CallError,
    ) -> Result<CallOutcome, CallError> {
        if !self.config.fallback_remote {
            return Err(original);
        }
        let already = self.is_degraded();
        if !already {
            let Some(transport) = self.rt.remote_transport() else {
                return Err(original);
            };
            if !transport.exports(&self.interface) {
                return Err(original);
            }
            match self.rt.import_remote(&self.client_domain, &self.interface) {
                Ok(remote) => {
                    *self.binding.lock() = Arc::new(remote);
                    self.degraded.store(true, Ordering::Release);
                }
                Err(e) => {
                    self.log_error(proc, &e);
                    return Err(original);
                }
            }
        } else {
            // Already degraded and still failing: nothing further to
            // fall back to.
            return Err(original);
        }
        let binding = self.binding();
        let thread = self.thread();
        let index = binding.proc_index(proc)?;
        let result = binding.call_indexed(0, &thread, index, args);
        match &result {
            Ok(_) => self.breaker.on_success(),
            Err(e) => self.log_error(proc, e),
        }
        result
    }

    /// Joins every worker whose call was abandoned (they unblock once the
    /// hang is released or the server is terminated). Returns the number
    /// joined. Call before checking leak invariants.
    pub fn drain(&self) -> usize {
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        let n = workers.len();
        for w in workers {
            let _ = w.join();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_rejects_and_probes() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            cooldown_rejects: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Two rejected calls...
        assert!(matches!(b.admit(), Err(CallError::CircuitOpen)));
        assert!(matches!(b.admit(), Err(CallError::CircuitOpen)));
        // ...then the next is the half-open probe.
        assert!(b.admit().unwrap());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failing probe reopens; a succeeding one closes.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err());
        assert!(b.admit().is_err());
        assert!(b.admit().unwrap());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.admit().unwrap());
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            cooldown_rejects: 1,
        });
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "count was reset");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Nanos::from_micros(100),
            max_backoff: Nanos::from_micros(800),
        };
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        let a: Vec<Nanos> = (1..=6).map(|i| p.backoff(i, &mut s1)).collect();
        let b: Vec<Nanos> = (1..=6).map(|i| p.backoff(i, &mut s2)).collect();
        assert_eq!(a, b, "same seed, same jitter");
        // Exponential up to the cap (jitter adds at most 25%).
        assert!(a[0] >= Nanos::from_micros(100) && a[0] < Nanos::from_micros(126));
        assert!(a[1] >= Nanos::from_micros(200) && a[1] < Nanos::from_micros(251));
        assert!(a[5] >= Nanos::from_micros(800) && a[5] <= Nanos::from_micros(1000));
    }

    #[test]
    fn error_classification() {
        assert!(RetryPolicy::is_retryable(&CallError::NoAStacks));
        assert!(RetryPolicy::is_retryable(&CallError::Network("x".into())));
        assert!(!RetryPolicy::is_retryable(&CallError::BindingRevoked));
        assert!(!RetryPolicy::is_retryable(&CallError::CircuitOpen));
        assert!(CircuitBreaker::counts(&CallError::CallFailed));
        assert!(CircuitBreaker::counts(&CallError::BindingRevoked));
        assert!(!CircuitBreaker::counts(&CallError::NoAStacks));
        assert!(!CircuitBreaker::counts(&CallError::ServerFault("x".into())));
    }
}
