//! The LRPC call and return path (Section 3.2).
//!
//! "A client makes an LRPC by calling into its stub procedure which is
//! responsible for initiating the domain transfer. ... At call time, the
//! stub takes an A-stack off the queue, pushes the procedure's arguments
//! onto the A-stack, puts the address of the A-stack, the Binding Object
//! and a procedure identifier into registers, and traps to the kernel."
//!
//! The kernel then, in the context of the client's thread: verifies the
//! Binding and procedure identifier; verifies the A-stack and locates the
//! corresponding linkage; ensures no other thread is using that
//! A-stack/linkage pair; records the caller's return address; pushes the
//! linkage onto the thread's linkage stack; finds an execution stack in the
//! server's domain; switches the virtual-memory context (or exchanges
//! processors with one idling in the server's context, Section 3.4); and
//! performs an upcall into the server's stub.
//!
//! Every step here is *functional* — real validation, real byte copies
//! through the pairwise-shared A-stack, real linkage-stack manipulation —
//! and each step also charges its calibrated cost to the executing
//! simulated CPU, so the virtual clock reproduces the paper's latencies.

use std::cell::Cell;
use std::sync::Arc;

use firefly::cpu::{Cpu, Machine};
use firefly::error::MemFault;
use firefly::mem::{PageId, Region};
use firefly::meter::{Meter, Phase, TraceId};
use firefly::time::Nanos;
use firefly::vm::VmContext;
use idl::copyops::{CopyLog, CopyOp};
use idl::plan::ArgVec;
use idl::stubvm::{needs_server_copy, Frame, OobStore, StubError, StubVm};
use idl::wire::Value;
use kernel::objects::RawHandle;
use kernel::thread::{Linkage, ReturnPath, Thread};

use crate::astack::{AStackPolicy, LinkageSlot};
use crate::binding::{BindingState, ServerCtx};
use crate::error::CallError;
use crate::estack::EStackPool;
use crate::runtime::LrpcRuntime;

/// Extra validation time for an A-stack outside the primary contiguous
/// region (Section 5.2: "A-stacks in this space ... will take slightly
/// more time to validate during a call").
pub(crate) const OVERFLOW_VALIDATION_COST: Nanos = Nanos::from_micros(3);

/// One-time cost of allocating a fresh E-stack out of the server domain
/// (the lazy-association slow path).
pub(crate) const ESTACK_ALLOC_COST: Nanos = Nanos::from_micros(10);

/// Cost of mapping and unmapping a per-call out-of-band segment
/// ("Handling unexpectedly large parameters is complicated and relatively
/// expensive, but infrequent", Section 5.2). Steady-state large calls
/// avoid it entirely by leasing a chunk of the binding's bind-time
/// [`crate::bulk::BulkArena`]; only the fallback path (payload over the
/// chunk size, or arena exhausted) still pays it.
pub const OOB_SEGMENT_COST: Nanos = Nanos::from_micros(20);

/// Name of the per-class A-stack queue lock, for lock-time attribution.
pub const ASTACK_QUEUE_LOCK: &str = "astack-queue";

/// Everything a completed call reports.
#[derive(Debug)]
pub struct CallOutcome {
    /// The procedure's return value, if declared.
    pub ret: Option<Value>,
    /// Out/inout parameter results as `(param_index, value)`.
    pub outs: Vec<(usize, Value)>,
    /// Virtual time the call took on the calling thread.
    pub elapsed: Nanos,
    /// Phase-by-phase time breakdown (enabled calls only).
    pub meter: Meter,
    /// The copy operations performed (Table 3).
    pub copies: CopyLog,
    /// True if the call-direction transfer used a processor exchange.
    pub exchanged_on_call: bool,
    /// True if the return-direction transfer used a processor exchange.
    pub exchanged_on_return: bool,
    /// The CPU the thread ended on (differs from the start CPU after an
    /// odd number of exchanges).
    pub end_cpu: usize,
    /// The call's identity in the flight recorder: every span this call
    /// emitted carries this id, so `obs::flight::spans_for(outcome.trace)`
    /// isolates exactly this call's phases.
    pub trace: TraceId,
}

/// A stub-VM frame backed by a slice of a (pairwise-shared) A-stack
/// region, with protection checks and TLB page touches.
pub(crate) struct AStackFrame<'a> {
    cpu: &'a Cpu,
    ctx: &'a VmContext,
    region: &'a Region,
    base: usize,
    len: usize,
    misses: Cell<u64>,
}

impl<'a> AStackFrame<'a> {
    pub(crate) fn new(
        cpu: &'a Cpu,
        ctx: &'a VmContext,
        region: &'a Region,
        base: usize,
        len: usize,
    ) -> Self {
        AStackFrame {
            cpu,
            ctx,
            region,
            base,
            len,
            misses: Cell::new(0),
        }
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.get()
    }

    fn touch(&self, offset: usize, len: usize) {
        let mut scratch = Meter::disabled();
        let n = self.cpu.touch_pages(
            self.region.pages_for(self.base + offset, len.max(1)),
            &mut scratch,
        );
        self.misses.set(self.misses.get() + n);
    }
}

impl Frame for AStackFrame<'_> {
    fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), StubError> {
        if offset + data.len() > self.len {
            return Err(StubError::Frame(MemFault::OutOfRange {
                region: self.region.id(),
                offset: self.base + offset,
                len: data.len(),
            }));
        }
        self.ctx
            .check(self.region.id(), true, false)
            .map_err(StubError::Frame)?;
        self.touch(offset, data.len());
        self.region
            .write_raw(self.base + offset, data)
            .map_err(StubError::Frame)
    }

    fn read_into(&self, offset: usize, out: &mut [u8]) -> Result<(), StubError> {
        if offset + out.len() > self.len {
            return Err(StubError::Frame(MemFault::OutOfRange {
                region: self.region.id(),
                offset: self.base + offset,
                len: out.len(),
            }));
        }
        self.ctx
            .check(self.region.id(), false, false)
            .map_err(StubError::Frame)?;
        self.touch(offset, out.len());
        self.region
            .read_raw(self.base + offset, out)
            .map_err(StubError::Frame)
    }
}

pub(crate) fn charge(cpu: &Cpu, meter: &mut Meter, phase: Phase, amount: Nanos) {
    cpu.charge(amount);
    meter.record_span(phase, amount, cpu.now());
}

pub(crate) fn charge_locked(
    cpu: &Cpu,
    meter: &mut Meter,
    phase: Phase,
    amount: Nanos,
    lock: &'static str,
) {
    cpu.charge(amount);
    meter.record_locked_span(phase, amount, Some(lock), cpu.now());
}

pub(crate) fn touch_set(cpu: &Cpu, pages: impl IntoIterator<Item = PageId>, meter: &mut Meter) {
    cpu.touch_pages(pages, meter);
}

/// Where one call's in-direction out-of-band segments travel: a chunk of
/// the binding's bind-time bulk arena (steady state) or a freshly mapped
/// per-call segment (fallback). Either way the bytes cross domains through
/// a pairwise-shared region under the server's protection checks.
pub(crate) struct OobTransport {
    pub(crate) region: Arc<Region>,
    pub(crate) base: usize,
}

/// Cleans up call resources if the path errors after acquisition.
pub(crate) struct CallGuard<'a> {
    pub(crate) state: &'a Arc<BindingState>,
    pub(crate) thread: &'a Arc<Thread>,
    pub(crate) machine: &'a Arc<Machine>,
    pub(crate) astack: Option<usize>,
    pub(crate) slot: Option<Arc<LinkageSlot>>,
    pub(crate) pool: Option<(Arc<EStackPool>, u64)>,
    /// A leased bulk-arena chunk to return.
    pub(crate) bulk_chunk: Option<usize>,
    /// A per-call fallback segment to unmap and free.
    pub(crate) oob_region: Option<Arc<Region>>,
    pub(crate) linkage_pushed: bool,
}

impl Drop for CallGuard<'_> {
    fn drop(&mut self) {
        if self.linkage_pushed {
            let _ = self.thread.pop_linkage();
        }
        if let Some(slot) = self.slot.take() {
            slot.release();
        }
        if let Some((pool, key)) = self.pool.take() {
            pool.end_call(key);
        }
        if let Some(chunk) = self.bulk_chunk.take() {
            if let Some(arena) = &self.state.bulk {
                arena.release(chunk);
            }
        }
        if let Some(region) = self.oob_region.take() {
            self.state.client.ctx().unmap(region.id());
            self.state.server.ctx().unmap(region.id());
            self.machine.mem().free(region.id());
        }
        if let Some(idx) = self.astack.take() {
            self.state.astacks.release(idx);
        }
    }
}

impl CallGuard<'_> {
    pub(crate) fn disarm(&mut self) {
        self.astack = None;
        self.slot = None;
        self.pool = None;
        self.bulk_chunk = None;
        self.oob_region = None;
        self.linkage_pushed = false;
    }
}

/// The full LRPC call path. Returns the outcome or the raised exception.
#[expect(clippy::too_many_arguments)]
pub(crate) fn lrpc_call(
    rt: &Arc<LrpcRuntime>,
    handle: RawHandle,
    client_state: &Arc<BindingState>,
    cpu_start: usize,
    thread: &Arc<Thread>,
    proc_index: usize,
    args: &[Value],
    metered: bool,
) -> Result<CallOutcome, CallError> {
    let machine = Arc::clone(rt.kernel().machine());
    let cost = *machine.cost();
    let mut meter = if metered {
        Meter::enabled()
    } else {
        Meter::disabled()
    };
    // Every call — metered or not — carries a TraceId, so the flight
    // recorder (when enabled) captures phase spans even from throughput
    // loops that skip per-call segment metering. One relaxed fetch_add.
    let trace = TraceId::next();
    meter.set_trace(trace);
    let mut copies = CopyLog::new();
    let mut cpu = machine.cpu(cpu_start);
    let start = cpu.now();

    // The formal procedure call into the client stub — the only procedure
    // call a simple LRPC needs on the client side.
    charge(
        cpu,
        &mut meter,
        Phase::ProcedureCall,
        cost.hw.procedure_call,
    );

    // "Deciding whether a call is cross-domain or cross-machine is made at
    // the earliest possible moment — the first instruction of the stub."
    if client_state.remote {
        let transport = rt.remote_transport().ok_or(CallError::NoRemoteTransport)?;
        client_state.stats.note_remote();
        let (ret, outs) = transport.call(
            &client_state.interface.name,
            proc_index,
            args,
            cpu,
            &mut meter,
        )?;
        let elapsed = cpu.now() - start;
        client_state.stats.note_call();
        client_state.stats.observe_latency(elapsed);
        client_state.stats.observe_tail_latency(elapsed);
        return Ok(CallOutcome {
            ret,
            outs,
            elapsed,
            meter,
            copies,
            exchanged_on_call: false,
            exchanged_on_return: false,
            end_cpu: cpu.id(),
            trace,
        });
    }

    let proc = client_state
        .interface
        .procs
        .get(proc_index)
        .ok_or(CallError::BadProcedure { index: proc_index })?;
    // The copy plan compiled for this procedure at import time: offsets,
    // checks and cost totals all hoisted out of the call. A half that
    // could not be specialized is `None` and runs the interpreter below.
    let plan = &client_state.plans.procs[proc_index];
    let client_ctx = client_state.client.ctx();
    let server_ctx = client_state.server.ctx();

    // First call on this CPU: the client's context must be loaded.
    cpu.switch_context(client_ctx.id(), &cost, &mut meter);

    // ---- Client stub, call half -------------------------------------
    charge(cpu, &mut meter, Phase::ClientStub, cost.client_stub_call);
    touch_set(
        cpu,
        client_state.touch.client_call().iter().copied(),
        &mut meter,
    );

    let class = client_state.astacks.class_of_proc(proc_index);
    // Fault injection: drain the class's free list so this acquire faces
    // genuine exhaustion and takes the real Section 5.2 path (fail, or
    // overflow growth under `Grow`). The stolen stacks go straight back
    // afterwards, so nothing leaks across calls.
    let fault_plan = rt.fault_plan();
    let stolen: Vec<usize> = match &fault_plan {
        Some(plan) if plan.exhaust_astacks("call:astacks") => {
            let mut stolen = Vec::new();
            while let Ok(idx) = client_state.astacks.acquire(
                class,
                AStackPolicy::Fail,
                rt.kernel(),
                &client_state.client,
                &client_state.server,
            ) {
                stolen.push(idx);
            }
            stolen
        }
        _ => Vec::new(),
    };
    let acquire_policy = if stolen.is_empty() {
        rt.config().astack_policy
    } else {
        match rt.config().astack_policy {
            // Growing still works while exhausted; waiting would block on
            // stacks this very call is holding hostage.
            AStackPolicy::Grow => AStackPolicy::Grow,
            _ => AStackPolicy::Fail,
        }
    };
    let acquired = client_state.astacks.acquire(
        class,
        acquire_policy,
        rt.kernel(),
        &client_state.client,
        &client_state.server,
    );
    for idx in stolen {
        client_state.astacks.release(idx);
    }
    let astack_idx = acquired?;
    charge_locked(
        cpu,
        &mut meter,
        Phase::QueueOp,
        cost.astack_queue_op,
        ASTACK_QUEUE_LOCK,
    );

    let mut guard = CallGuard {
        state: client_state,
        thread,
        machine: &machine,
        astack: Some(astack_idx),
        slot: None,
        pool: None,
        bulk_chunk: None,
        oob_region: None,
        linkage_pushed: false,
    };

    let aref = client_state
        .astacks
        .lookup(astack_idx)
        .ok_or(CallError::BadAStack)?;
    let in_bytes = plan.in_bytes;
    let out_bytes = plan.out_bytes;

    // The stub's queue management and register setup touch the A-stack.
    touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut meter);

    // Push the arguments onto the shared A-stack (copy A of Table 3). A
    // compiled push plan executes the fused bulk moves; otherwise the
    // interpreter walks the parameter list op by op.
    let mut oob = OobStore::new();
    {
        let mut frame = AStackFrame::new(cpu, client_ctx, &aref.region, aref.offset, aref.size);
        let mut vm = StubVm::new(&cost, cpu, &mut meter);
        match &plan.push {
            Some(p) => p.execute(proc, args, &mut frame, &mut vm)?,
            None => vm.client_push_args(proc, args, &mut frame, &mut oob)?,
        }
        let misses = frame.misses();
        meter.add_tlb_misses(misses);
    }
    if metered {
        for (slot, p) in proc.layout.params.iter().zip(&proc.def.params) {
            if p.dir.is_in() {
                copies.record(CopyOp::A, slot.size);
            }
        }
    }

    // Oversized/complex values travel in a real out-of-band memory
    // segment, pairwise-mapped like the A-stacks, rather than in host
    // memory: write the marshaled segments into it and reread them on the
    // server side under the server's protection context. Steady state
    // leases a chunk of the bind-time bulk arena (no map/unmap); the
    // per-call segment survives as the fallback for payloads over the
    // chunk size or an exhausted arena.
    let oob_transport = if oob.is_empty() {
        None
    } else {
        let total: usize = oob.iter().map(|s| s.len() + 8).sum();
        client_state.stats.observe_bulk_bytes(total as u64);
        // Fault injection: present the arena as exhausted, so this call
        // exercises the real per-call fallback path.
        let exhausted = matches!(&fault_plan, Some(plan) if plan.exhaust_bulk("call:bulk"));
        let chunk = if exhausted {
            None
        } else {
            client_state.bulk.as_ref().and_then(|a| a.acquire(total))
        };
        let (region, base) = match chunk {
            Some(c) => {
                guard.bulk_chunk = Some(c.index);
                let arena = client_state.bulk.as_ref().expect("chunk implies arena");
                (Arc::clone(arena.region()), c.offset)
            }
            None => {
                client_state.stats.note_bulk_fallback();
                charge(cpu, &mut meter, Phase::OobSegment, OOB_SEGMENT_COST);
                let region = rt.kernel().map_pairwise(
                    "oob-segment",
                    &client_state.client,
                    &client_state.server,
                    total.max(8),
                );
                guard.oob_region = Some(Arc::clone(&region));
                (region, 0)
            }
        };
        let mut off = base;
        let mut scratch = Meter::disabled();
        for seg in &oob {
            let mut hdr = [0u8; 8];
            hdr[..4].copy_from_slice(&(seg.len() as u32).to_le_bytes());
            region.write_raw(off, &hdr).map_err(CallError::Mem)?;
            region.write_raw(off + 8, seg).map_err(CallError::Mem)?;
            cpu.touch_pages(region.pages_for(off, seg.len() + 8), &mut scratch);
            off += seg.len() + 8;
        }
        Some(OobTransport { region, base })
    };

    // Trap to the kernel.
    rt.kernel().trap(cpu, &mut meter);

    // ---- Kernel, call path ------------------------------------------
    charge(
        cpu,
        &mut meter,
        Phase::KernelTransfer,
        cost.kernel_transfer_call,
    );
    touch_set(
        cpu,
        client_state.touch.kernel_call().iter().copied(),
        &mut meter,
    );

    // Verify the Binding Object and procedure identifier.
    //
    // Fault injection: present a forged Binding Object (wrong nonce) so
    // the kernel's own validation — not a shortcut — rejects the call.
    let handle = match &fault_plan {
        Some(plan) if plan.forge_binding("call:binding") => RawHandle {
            id: handle.id,
            nonce: handle.nonce ^ 0xDEAD_BEEF,
        },
        _ => handle,
    };
    let state = rt.validate_binding(handle)?;
    if !state.server.is_active() || !state.client.is_active() {
        return Err(CallError::DomainDead);
    }
    if proc_index >= state.interface.procs.len() {
        return Err(CallError::BadProcedure { index: proc_index });
    }
    // Verify the A-stack and locate the corresponding linkage.
    let aref = state.astacks.validate(astack_idx, class)?;
    if aref.overflow {
        charge(cpu, &mut meter, Phase::Validation, OVERFLOW_VALIDATION_COST);
    }
    let slot = state
        .astacks
        .linkage(astack_idx)
        .ok_or(CallError::BadAStack)?;
    // Ensure no other thread is using the A-stack/linkage pair.
    if !slot.try_claim() {
        return Err(CallError::AStackBusy);
    }
    guard.slot = Some(Arc::clone(&slot));

    // Record the caller's return address and stack pointer in the linkage
    // and push it onto the thread's linkage stack.
    let linkage = Linkage {
        caller_domain: state.client.id(),
        callee_domain: state.server.id(),
        binding: handle,
        astack_index: astack_idx,
        proc_index,
        return_sp: thread.user_sp(),
        valid: true,
    };
    slot.set_record(linkage);
    thread.push_linkage(linkage);
    guard.linkage_pushed = true;

    // Find an execution stack in the server's domain (lazy association)
    // and update the thread's user stack pointer to run off of it. The
    // association key is the A-stack's global identity (region + index),
    // so distinct bindings never collide.
    let astack_key = (aref.region.id().0 << 24) | astack_idx as u64;
    let pool = Arc::clone(&state.estack_pool);
    let (estack, fresh) = pool.get_for_call(rt.kernel(), astack_key);
    guard.pool = Some((Arc::clone(&pool), astack_key));
    if fresh {
        charge(cpu, &mut meter, Phase::Other, ESTACK_ALLOC_COST);
    }
    thread.set_user_sp(estack.id().0 << 32);
    // The kernel primes the E-stack with the initial call frame expected
    // by the server's procedure, "enabling the server stub to branch to
    // the first instruction of the procedure".
    let mut frame_header = [0u8; 16];
    frame_header[..4].copy_from_slice(&(proc_index as u32).to_le_bytes());
    frame_header[4..8].copy_from_slice(&(astack_idx as u32).to_le_bytes());
    frame_header[8..].copy_from_slice(&0xF1FE_F1FE_CA11_F4A3u64.to_le_bytes());
    estack.write_raw(0, &frame_header).map_err(CallError::Mem)?;

    // ---- Transfer into the server domain -----------------------------
    let caching = rt.config().domain_caching;
    let mut exchanged_on_call = false;
    if caching {
        if let Some(idle) = machine.claim_idle_cpu_in(server_ctx.id()) {
            // Exchange processors: the calling thread continues on the CPU
            // where the server's context is already loaded; the idling
            // thread keeps idling on the client's original processor.
            let target = machine.cpu(idle);
            target.advance_to(cpu.now());
            cpu.set_idle_in(Some(client_ctx.id()));
            cpu = target;
            charge(
                cpu,
                &mut meter,
                Phase::ProcessorExchange,
                cost.processor_exchange,
            );
            state.server.note_idle_hit();
            state.stats.note_cache_hit();
            exchanged_on_call = true;
        } else {
            state.server.note_idle_miss();
            state.stats.note_cache_miss();
            cpu.switch_context(server_ctx.id(), &cost, &mut meter);
        }
    } else {
        cpu.switch_context(server_ctx.id(), &cost, &mut meter);
    }

    // ---- Upcall into the server stub ---------------------------------
    charge(cpu, &mut meter, Phase::ServerStub, cost.server_stub_entry);
    touch_set(cpu, state.touch.server_side().iter().copied(), &mut meter);
    if exchanged_on_call && in_bytes > 0 {
        // The arguments were written into the other processor's cache.
        charge(
            cpu,
            &mut meter,
            Phase::ArgCopy,
            cost.remote_access_per_byte * in_bytes as u64,
        );
    }

    touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut meter);
    // Rebuild the out-of-band store from the shared segment, with the
    // server's protection context enforced.
    let server_oob: OobStore = match &oob_transport {
        None => OobStore::new(),
        Some(t) => {
            server_ctx
                .check(t.region.id(), false, false)
                .map_err(CallError::Mem)?;
            let mut segs = OobStore::new();
            let mut off = t.base;
            let mut scratch = Meter::disabled();
            for _ in 0..oob.len() {
                let hdr = t.region.read_vec(off, 8).map_err(CallError::Mem)?;
                let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
                segs.push(t.region.read_vec(off + 8, len).map_err(CallError::Mem)?);
                cpu.touch_pages(t.region.pages_for(off, len + 8), &mut scratch);
                off += len + 8;
            }
            segs
        }
    };

    let sargs = {
        let frame = AStackFrame::new(cpu, server_ctx, &aref.region, aref.offset, aref.size);
        let mut vm = StubVm::new(&cost, cpu, &mut meter);
        let vals = match &plan.read {
            Some(rp) => {
                let mut out = ArgVec::new();
                rp.execute(&frame, &mut vm, &mut out)?;
                out
            }
            None => ArgVec::from_vec(vm.server_read_args(proc, &frame, &server_oob)?),
        };
        let misses = frame.misses();
        meter.add_tlb_misses(misses);
        vals
    };
    if metered {
        for (slot_l, p) in proc.layout.params.iter().zip(&proc.def.params) {
            if p.dir.is_in() && needs_server_copy(p, proc.def.inplace) {
                copies.record(CopyOp::E, slot_l.size);
            }
        }
    }

    // Run the server procedure on the client's (migrated) thread.
    let sctx = ServerCtx {
        rt: Arc::clone(rt),
        thread: Arc::clone(thread),
        domain: Arc::clone(&state.server),
        cpu_id: cpu.id(),
    };
    let reply = state.clerk.dispatch(proc_index, &sctx, sargs.as_slice())?;

    // ---- Server stub, return half ------------------------------------
    charge(cpu, &mut meter, Phase::ServerStub, cost.server_stub_return);
    {
        let mut frame = AStackFrame::new(cpu, server_ctx, &aref.region, aref.offset, aref.size);
        match &plan.place {
            Some(p) => p.execute(reply.ret.as_ref(), &reply.outs, &mut frame)?,
            None => {
                let mut vm = StubVm::new(&cost, cpu, &mut meter);
                vm.server_place_results(
                    proc,
                    reply.ret.as_ref(),
                    &reply.outs,
                    &mut frame,
                    &mut oob,
                )?;
            }
        }
        let misses = frame.misses();
        meter.add_tlb_misses(misses);
    }

    rt.kernel().trap(cpu, &mut meter);

    // ---- Kernel, return path ------------------------------------------
    // "Unlike the call ... this information, contained at the top of the
    // linkage stack referenced by the thread's control block, is implicit
    // in the return. There is no need to verify the returning thread's
    // right to transfer back."
    charge(
        cpu,
        &mut meter,
        Phase::KernelTransfer,
        cost.kernel_transfer_return,
    );
    touch_set(cpu, state.touch.kernel_return().iter().copied(), &mut meter);

    slot.release();
    pool.end_call(astack_key);
    guard.slot = None;
    guard.pool = None;

    let pop = thread.pop_linkage();
    guard.linkage_pushed = false;
    match pop {
        ReturnPath::Return { to, call_failed } => {
            // Restore the caller's saved stack pointer from the linkage.
            thread.set_user_sp(to.return_sp);
            if call_failed || to.caller_domain != state.client.id() {
                // A domain involved in this call terminated while we were
                // out; the caller sees a call-failed exception.
                return Err(CallError::CallFailed);
            }
        }
        ReturnPath::DestroyThread => {
            let aborted = thread.is_abandoned();
            rt.kernel().reap_thread(thread.id());
            return Err(if aborted {
                CallError::CallAborted
            } else {
                CallError::CallFailed
            });
        }
    }

    // ---- Transfer back to the client domain ---------------------------
    let mut exchanged_on_return = false;
    if caching {
        if let Some(idle) = machine.claim_idle_cpu_in(client_ctx.id()) {
            let target = machine.cpu(idle);
            target.advance_to(cpu.now());
            cpu.set_idle_in(Some(server_ctx.id()));
            cpu = target;
            charge(
                cpu,
                &mut meter,
                Phase::ProcessorExchange,
                cost.processor_exchange,
            );
            state.client.note_idle_hit();
            state.stats.note_cache_hit();
            exchanged_on_return = true;
        } else {
            state.client.note_idle_miss();
            state.stats.note_cache_miss();
            cpu.switch_context(client_ctx.id(), &cost, &mut meter);
        }
    } else {
        cpu.switch_context(client_ctx.id(), &cost, &mut meter);
    }

    // ---- Client stub, return half --------------------------------------
    charge(cpu, &mut meter, Phase::ClientStub, cost.client_stub_return);
    touch_set(
        cpu,
        client_state.touch.client_return().iter().copied(),
        &mut meter,
    );
    if exchanged_on_return && out_bytes > 0 {
        charge(
            cpu,
            &mut meter,
            Phase::ArgCopy,
            cost.remote_access_per_byte * out_bytes as u64,
        );
    }

    touch_set(cpu, aref.region.pages_for(aref.offset, 1), &mut meter);

    // Returned values are copied from the A-stack directly into their
    // final destination (copy F of Table 3).
    let (ret, outs) = {
        let frame = AStackFrame::new(cpu, client_ctx, &aref.region, aref.offset, aref.size);
        let mut vm = StubVm::new(&cost, cpu, &mut meter);
        let r = match &plan.fetch {
            Some(p) => p.execute(&frame, &mut vm)?,
            None => vm.client_fetch_results(proc, &frame, &oob)?,
        };
        let misses = frame.misses();
        meter.add_tlb_misses(misses);
        r
    };
    if metered {
        if proc.layout.ret.is_some() {
            copies.record(CopyOp::F, proc.layout.ret.as_ref().map_or(0, |s| s.size));
        }
        for (slot_l, p) in proc.layout.params.iter().zip(&proc.def.params) {
            if p.dir.is_out() {
                copies.record(CopyOp::F, slot_l.size);
            }
        }
    }

    // Return the bulk-arena chunk (lock-free push) or reclaim the
    // per-call fallback segment.
    if let Some(idx) = guard.bulk_chunk.take() {
        if let Some(arena) = &client_state.bulk {
            arena.release(idx);
        }
    }
    if let Some(region) = guard.oob_region.take() {
        client_state.client.ctx().unmap(region.id());
        client_state.server.ctx().unmap(region.id());
        rt.kernel().machine().mem().free(region.id());
    }

    // Requeue the A-stack (LIFO) — a lock-free push; the virtual-time
    // charge still models the paper's queue-op cost.
    guard.disarm();
    client_state.astacks.release(astack_idx);
    charge_locked(
        cpu,
        &mut meter,
        Phase::QueueOp,
        cost.astack_queue_op,
        ASTACK_QUEUE_LOCK,
    );

    let elapsed = cpu.now() - start;
    client_state.stats.note_call();
    client_state.stats.observe_latency(elapsed);
    client_state.stats.observe_tail_latency(elapsed);
    if metered {
        // Virtual time the four stub halves cost this call, for the
        // per-interface `lrpc_stub_ns` histogram.
        client_state.stats.observe_stub_ns(
            meter.total_for(Phase::ClientStub)
                + meter.total_for(Phase::ServerStub)
                + meter.total_for(Phase::ArgCopy)
                + meter.total_for(Phase::Marshal),
        );
    }
    client_state
        .stats
        .note_exchanges(u64::from(exchanged_on_call) + u64::from(exchanged_on_return));

    Ok(CallOutcome {
        ret,
        outs,
        elapsed,
        meter,
        copies,
        exchanged_on_call,
        exchanged_on_return,
        end_cpu: cpu.id(),
        trace,
    })
}
