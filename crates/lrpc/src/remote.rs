//! Cross-machine transparency (Section 5.1).
//!
//! "Deciding whether a call is cross-domain or cross-machine is made at the
//! earliest possible moment — the first instruction of the stub. If the
//! call is to a truly remote server (indicated by a bit in the Binding
//! Object), then a branch is taken to a more conventional RPC stub."
//!
//! The conventional RPC stub lives in the `msgrpc` crate; to keep the
//! dependency one-way, LRPC sees it through this trait and the wiring
//! happens in the application (or the benchmark harness).

use std::sync::Arc;

use firefly::cpu::Cpu;
use firefly::meter::Meter;
use idl::stubgen::CompiledInterface;
use idl::wire::Value;

use crate::error::CallError;

/// The result of a remote call: return value and out-parameter values.
pub type RemoteReply = (Option<Value>, Vec<(usize, Value)>);

/// A conventional (network) RPC transport.
pub trait RemoteTransport: Send + Sync {
    /// True if the transport can reach an exporter of `interface`.
    fn exports(&self, interface: &str) -> bool;

    /// The compiled interface of a remote exporter, used to build the
    /// client-side stubs at import time.
    fn interface(&self, interface: &str) -> Option<Arc<CompiledInterface>>;

    /// Performs the remote call, charging network and marshaling costs to
    /// `cpu`.
    fn call(
        &self,
        interface: &str,
        proc_index: usize,
        args: &[Value],
        cpu: &Cpu,
        meter: &mut Meter,
    ) -> Result<RemoteReply, CallError>;
}
