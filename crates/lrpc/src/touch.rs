//! TLB touch plans.
//!
//! The paper estimates "that 43 TLB misses occur during the Null call" and
//! notes that "the data structures and control sequences of LRPC were
//! designed to minimize TLB misses". To make the miss count *emerge* from
//! simulation rather than be asserted, each binding carries a touch plan:
//! the pages the call path's code and data structures occupy, grouped by
//! the phase (and therefore VM context) in which they are referenced. The
//! per-CPU TLB model does the rest — on an invalidate-on-switch machine the
//! working set re-misses after each of the two context switches.
//!
//! Page budget for the serial Null call (steady state, two invalidations
//! per call):
//!
//! | set            | pages | missed per call |
//! |----------------|-------|-----------------|
//! | client call    | 8     | 8  |
//! | kernel call    | 9     | 9  |
//! | server side    | 12    | 12 |
//! | kernel return  | 7     | 7  |
//! | client return  | 5     | 5  |
//! | A-stack page   | 1     | 2 (touched on both sides) |
//!
//! Total: 43.

use std::sync::Arc;

use firefly::mem::{PageId, Region, PAGE_SIZE};
use firefly::vm::Protection;
use kernel::kernel::Kernel;
use kernel::Domain;

/// Pages per touch set (see the module table).
const CLIENT_CALL_PAGES: usize = 8;
const KERNEL_CALL_PAGES: usize = 9;
const SERVER_SIDE_PAGES: usize = 12;
const KERNEL_RETURN_PAGES: usize = 7;
const CLIENT_RETURN_PAGES: usize = 5;

/// The per-binding working-set pages, grouped by call phase.
///
/// The page sets are precomputed once at allocation so the steady-state
/// call path borrows slices instead of rebuilding page vectors per call.
pub struct TouchPlan {
    /// Held so the regions stay allocated for the binding's lifetime.
    _client_rt: Arc<Region>,
    _kernel_rt: Arc<Region>,
    _server_rt: Arc<Region>,
    client_call: Vec<PageId>,
    kernel_call: Vec<PageId>,
    server_side: Vec<PageId>,
    kernel_return: Vec<PageId>,
    client_return: Vec<PageId>,
}

impl TouchPlan {
    /// Allocates the runtime working-set regions for a binding: client-side
    /// stub/queue/binding pages, kernel transfer-path pages, and
    /// server-side stub/PD/E-stack pages.
    pub fn allocate(kernel: &Kernel, client: &Domain, server: &Domain) -> TouchPlan {
        let client_rt = kernel.alloc_mapped(
            client,
            "lrpc-client-rt",
            (CLIENT_CALL_PAGES + CLIENT_RETURN_PAGES) * PAGE_SIZE,
            Protection::ReadWrite,
        );
        // Kernel data structures are not mapped into either domain.
        let kernel_rt = kernel.machine().mem().alloc(
            "lrpc-kernel-rt",
            (KERNEL_CALL_PAGES + KERNEL_RETURN_PAGES) * PAGE_SIZE,
        );
        let server_rt = kernel.alloc_mapped(
            server,
            "lrpc-server-rt",
            SERVER_SIDE_PAGES * PAGE_SIZE,
            Protection::ReadWrite,
        );
        TouchPlan {
            client_call: Self::pages(&client_rt, 0, CLIENT_CALL_PAGES),
            client_return: Self::pages(&client_rt, CLIENT_CALL_PAGES, CLIENT_RETURN_PAGES),
            kernel_call: Self::pages(&kernel_rt, 0, KERNEL_CALL_PAGES),
            kernel_return: Self::pages(&kernel_rt, KERNEL_CALL_PAGES, KERNEL_RETURN_PAGES),
            server_side: Self::pages(&server_rt, 0, SERVER_SIDE_PAGES),
            _client_rt: client_rt,
            _kernel_rt: kernel_rt,
            _server_rt: server_rt,
        }
    }

    fn pages(region: &Region, first: usize, count: usize) -> Vec<PageId> {
        (first..first + count)
            .map(|p| PageId::of(region.id(), p * PAGE_SIZE))
            .collect()
    }

    /// Pages the client stub touches on the call path.
    pub fn client_call(&self) -> &[PageId] {
        &self.client_call
    }

    /// Pages the kernel touches on the call path.
    pub fn kernel_call(&self) -> &[PageId] {
        &self.kernel_call
    }

    /// Pages the server stub and procedure touch.
    pub fn server_side(&self) -> &[PageId] {
        &self.server_side
    }

    /// Pages the kernel touches on the return path.
    pub fn kernel_return(&self) -> &[PageId] {
        &self.kernel_return
    }

    /// Pages the client stub touches on the return path.
    pub fn client_return(&self) -> &[PageId] {
        &self.client_return
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    #[test]
    fn page_sets_sum_to_41_plus_astack() {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let c = k.create_domain("c");
        let s = k.create_domain("s");
        let plan = TouchPlan::allocate(&k, &c, &s);
        let total = plan.client_call().len()
            + plan.kernel_call().len()
            + plan.server_side().len()
            + plan.kernel_return().len()
            + plan.client_return().len();
        // 41 plan pages + 2 A-stack misses = the paper's 43.
        assert_eq!(total, 41);
    }

    #[test]
    fn sets_are_disjoint() {
        let k = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let c = k.create_domain("c");
        let s = k.create_domain("s");
        let plan = TouchPlan::allocate(&k, &c, &s);
        let mut all: Vec<PageId> = Vec::new();
        all.extend(plan.client_call());
        all.extend(plan.kernel_call());
        all.extend(plan.server_side());
        all.extend(plan.kernel_return());
        all.extend(plan.client_return());
        let n = all.len();
        all.sort_by_key(|p| p.0);
        all.dedup();
        assert_eq!(all.len(), n, "touch sets must not share pages");
    }
}
