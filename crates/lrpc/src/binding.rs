//! Binding: clerks, Binding Objects and the import protocol.
//!
//! "A server module exports an interface through a clerk in the LRPC
//! run-time library included in every domain. The clerk registers the
//! interface with a name server and awaits import requests from clients.
//! ... The clerk enables the binding by replying to the kernel with a
//! procedure descriptor list (PDL). ... After the binding has completed,
//! the kernel returns to the client a Binding Object" (Section 3.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use firefly::time::Nanos;
use idl::plan::InterfacePlans;
use idl::stubgen::{CompiledInterface, ProcedureDescriptor};
use idl::wire::Value;
use kernel::objects::RawHandle;
use kernel::thread::Thread;
use kernel::Domain;

use crate::astack::AStackSet;
use crate::bulk::BulkArena;
use crate::error::CallError;
use crate::runtime::LrpcRuntime;
use crate::touch::TouchPlan;

/// What a server procedure hands back.
#[derive(Clone, Debug, Default)]
pub struct Reply {
    /// The return value (must be present iff the procedure declares one).
    pub ret: Option<Value>,
    /// Values for `out`/`inout` parameters, as `(param_index, value)`.
    pub outs: Vec<(usize, Value)>,
}

impl Reply {
    /// An empty reply (procedures returning nothing).
    pub fn none() -> Reply {
        Reply::default()
    }

    /// A reply carrying just a return value.
    pub fn value(v: Value) -> Reply {
        Reply {
            ret: Some(v),
            outs: Vec::new(),
        }
    }

    /// Adds an out-parameter value.
    pub fn with_out(mut self, param: usize, v: Value) -> Reply {
        self.outs.push((param, v));
        self
    }
}

/// Context handed to a server procedure while it runs in the server's
/// domain on the client's thread.
pub struct ServerCtx {
    /// The runtime (for nested out-calls).
    pub rt: Arc<LrpcRuntime>,
    /// The (migrated) client thread executing the procedure.
    pub thread: Arc<Thread>,
    /// The server domain.
    pub domain: Arc<Domain>,
    /// The CPU the call is executing on (after any processor exchange).
    pub cpu_id: usize,
}

impl ServerCtx {
    /// Charges server-procedure work to the executing CPU.
    pub fn charge(&self, work: Nanos) {
        self.rt.kernel().machine().cpu(self.cpu_id).charge(work);
    }
}

/// A server procedure body.
pub type Handler = Box<dyn Fn(&ServerCtx, &[Value]) -> Result<Reply, CallError> + Send + Sync>;

/// The server-side clerk for one exported interface.
pub struct Clerk {
    interface: Arc<CompiledInterface>,
    domain: Arc<Domain>,
    handlers: Vec<Handler>,
}

impl Clerk {
    /// Creates a clerk; used by [`LrpcRuntime::export`].
    ///
    /// # Panics
    ///
    /// Panics if the handler count does not match the interface's procedure
    /// count — an export-time programming error, caught before any client
    /// can bind.
    pub fn new(
        interface: Arc<CompiledInterface>,
        domain: Arc<Domain>,
        handlers: Vec<Handler>,
    ) -> Clerk {
        assert_eq!(
            interface.procs.len(),
            handlers.len(),
            "interface `{}` declares {} procedures but {} handlers were supplied",
            interface.name,
            interface.procs.len(),
            handlers.len()
        );
        Clerk {
            interface,
            domain,
            handlers,
        }
    }

    /// The compiled interface this clerk serves.
    pub fn interface(&self) -> &Arc<CompiledInterface> {
        &self.interface
    }

    /// The server domain.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// The clerk's reply to the kernel during binding: the PDL.
    pub fn pdl(&self) -> Vec<ProcedureDescriptor> {
        self.interface.pdl()
    }

    /// Invokes handler `index`.
    ///
    /// A panicking server procedure is converted into a
    /// [`CallError::ServerFault`]: protection domains exist precisely so a
    /// server bug ends in "failure isolation", not in tearing down the
    /// client ("an unhandled exception" is one of Section 5.3's
    /// termination triggers; here the call fails and the caller decides).
    pub fn dispatch(
        &self,
        index: usize,
        ctx: &ServerCtx,
        args: &[Value],
    ) -> Result<Reply, CallError> {
        let h = self
            .handlers
            .get(index)
            .ok_or(CallError::BadProcedure { index })?;
        let fault = ctx.rt.fault_plan().map(|plan| {
            (
                plan.dispatch_fault(&format!("dispatch:{}", self.interface.name)),
                plan,
            )
        });
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Injected faults run inside the unwind boundary, on the
            // migrated client thread, so each one exercises the *real*
            // failure path: a panic unwinds into the ServerFault
            // conversion below; terminating the server's own domain
            // invalidates this call's linkage (the return trap then takes
            // the call-failed path); hanging captures the thread until the
            // client-side watchdog abandons it.
            if let Some((f, plan)) = &fault {
                if f.delay_us > 0 {
                    ctx.charge(firefly::Nanos::from_micros(f.delay_us));
                }
                if f.terminate_server {
                    ctx.rt.terminate_domain(&ctx.domain);
                }
                if f.hang {
                    plan.wait_while_hung();
                }
                if f.panic {
                    panic!("injected fault: server procedure crashed");
                }
            }
            h(ctx, args)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "server procedure panicked".to_string());
                Err(CallError::ServerFault(format!(
                    "unhandled exception: {msg}"
                )))
            }
        }
    }
}

/// Running statistics of one binding.
#[derive(Debug, Default)]
pub struct BindingStats {
    calls: AtomicU64,
    failures: AtomicU64,
    exchanges: AtomicU64,
    remote_calls: AtomicU64,
    /// Out-of-band calls that could not use the bulk arena (payload over
    /// the chunk size, arena exhausted, or fault-injected) and paid the
    /// per-call segment map/unmap instead.
    bulk_fallbacks: AtomicU64,
    /// Per-call latency histogram, attached at import time when the
    /// binding is registered with the runtime's metrics registry. Bindings
    /// constructed outside a runtime simply never observe. `OnceLock::get`
    /// is a single atomic load, so observing stays lock-free.
    latency: OnceLock<obs::Histogram>,
    /// Per-call stub-phase (client stub + server stub + argument
    /// copy/marshal) virtual time, attached the same way.
    stub_ns: OnceLock<obs::Histogram>,
    /// Total out-of-band bytes per call (log2 buckets), attached the same
    /// way as `lrpc_bulk_bytes:{interface}`.
    bulk_bytes: OnceLock<obs::Histogram>,
    /// Calls per submitted batch, attached the same way as
    /// `lrpc_batch_size:{interface}`.
    batch_size: OnceLock<obs::Histogram>,
    /// High-resolution per-call latency (HDR-style sub-octave buckets,
    /// so p99/p999 are resolvable), attached the same way as
    /// `lrpc_tail_latency_ns:{interface}`. Stamped on every completion
    /// path — serial, batch reap, and the remote branch.
    tail_latency: OnceLock<obs::TailHistogram>,
    /// Transfers through this binding that found a processor idling in the
    /// target context (Section 3.4's domain caching), attached as
    /// `lrpc_domain_cache_hits:{interface}`. Call and return directions
    /// both count.
    cache_hits: OnceLock<obs::Counter>,
    /// Transfers that found no idle processor and paid the full context
    /// switch, attached as `lrpc_domain_cache_misses:{interface}`.
    cache_misses: OnceLock<obs::Counter>,
    /// Largest batch ever submitted through this binding — the adaptive
    /// sizing controller's ring-depth signal (a histogram cannot hand back
    /// its max cheaply; a `fetch_max` can).
    batch_peak: AtomicU64,
}

impl BindingStats {
    /// Completed calls through the binding.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls that raised an exception.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Processor exchanges performed (call and return direction combined).
    pub fn exchanges(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }

    /// Calls that took the remote (conventional RPC) branch.
    pub fn remote_calls(&self) -> u64 {
        self.remote_calls.load(Ordering::Relaxed)
    }

    /// Out-of-band calls that fell back to a per-call segment.
    pub fn bulk_fallbacks(&self) -> u64 {
        self.bulk_fallbacks.load(Ordering::Relaxed)
    }

    pub(crate) fn note_call(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_exchanges(&self, n: u64) {
        self.exchanges.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_remote(&self) {
        self.remote_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_bulk_fallback(&self) {
        self.bulk_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches the latency histogram this binding reports into. First
    /// attachment wins; later calls are ignored.
    pub fn attach_latency(&self, histogram: obs::Histogram) {
        let _ = self.latency.set(histogram);
    }

    /// The attached latency histogram, if any.
    pub fn latency(&self) -> Option<&obs::Histogram> {
        self.latency.get()
    }

    pub(crate) fn observe_latency(&self, elapsed: Nanos) {
        if let Some(h) = self.latency.get() {
            h.observe(elapsed.as_nanos());
        }
    }

    /// Attaches the stub-phase histogram. First attachment wins.
    pub fn attach_stub_ns(&self, histogram: obs::Histogram) {
        let _ = self.stub_ns.set(histogram);
    }

    /// The attached stub-phase histogram, if any.
    pub fn stub_ns(&self) -> Option<&obs::Histogram> {
        self.stub_ns.get()
    }

    pub(crate) fn observe_stub_ns(&self, stub: Nanos) {
        if let Some(h) = self.stub_ns.get() {
            h.observe(stub.as_nanos());
        }
    }

    /// Attaches the out-of-band bytes histogram. First attachment wins.
    pub fn attach_bulk_bytes(&self, histogram: obs::Histogram) {
        let _ = self.bulk_bytes.set(histogram);
    }

    /// The attached out-of-band bytes histogram, if any.
    pub fn bulk_bytes(&self) -> Option<&obs::Histogram> {
        self.bulk_bytes.get()
    }

    pub(crate) fn observe_bulk_bytes(&self, bytes: u64) {
        if let Some(h) = self.bulk_bytes.get() {
            h.observe(bytes);
        }
    }

    /// Attaches the batch-size histogram. First attachment wins.
    pub fn attach_batch_size(&self, histogram: obs::Histogram) {
        let _ = self.batch_size.set(histogram);
    }

    /// The attached batch-size histogram, if any.
    pub fn batch_size(&self) -> Option<&obs::Histogram> {
        self.batch_size.get()
    }

    pub(crate) fn observe_batch_size(&self, calls: u64) {
        self.batch_peak.fetch_max(calls, Ordering::Relaxed);
        if let Some(h) = self.batch_size.get() {
            h.observe(calls);
        }
    }

    /// Largest batch ever submitted through this binding.
    pub fn batch_peak(&self) -> u64 {
        self.batch_peak.load(Ordering::Relaxed)
    }

    /// Attaches the tail-latency histogram. First attachment wins.
    pub fn attach_tail_latency(&self, tail: obs::TailHistogram) {
        let _ = self.tail_latency.set(tail);
    }

    /// The attached tail-latency histogram, if any.
    pub fn tail_latency(&self) -> Option<&obs::TailHistogram> {
        self.tail_latency.get()
    }

    pub(crate) fn observe_tail_latency(&self, elapsed: Nanos) {
        if let Some(t) = self.tail_latency.get() {
            t.observe(elapsed.as_nanos());
        }
    }

    /// Attaches the domain-cache hit counter. First attachment wins.
    pub fn attach_cache_hits(&self, counter: obs::Counter) {
        let _ = self.cache_hits.set(counter);
    }

    /// The attached domain-cache hit counter, if any.
    pub fn cache_hits(&self) -> Option<&obs::Counter> {
        self.cache_hits.get()
    }

    pub(crate) fn note_cache_hit(&self) {
        if let Some(c) = self.cache_hits.get() {
            c.inc();
        }
    }

    /// Attaches the domain-cache miss counter. First attachment wins.
    pub fn attach_cache_misses(&self, counter: obs::Counter) {
        let _ = self.cache_misses.set(counter);
    }

    /// The attached domain-cache miss counter, if any.
    pub fn cache_misses(&self) -> Option<&obs::Counter> {
        self.cache_misses.get()
    }

    pub(crate) fn note_cache_miss(&self) {
        if let Some(c) = self.cache_misses.get() {
            c.inc();
        }
    }
}

/// The kernel-side state of one binding.
pub struct BindingState {
    /// The interface bound to.
    pub interface: Arc<CompiledInterface>,
    /// The importing (client) domain.
    pub client: Arc<Domain>,
    /// The exporting (server) domain.
    pub server: Arc<Domain>,
    /// The server's clerk.
    pub clerk: Arc<Clerk>,
    /// The pairwise-allocated A-stacks and their linkage slots.
    pub astacks: AStackSet,
    /// The bind-time bulk arena for large out-of-band parameters, allocated
    /// alongside the A-stack list when the interface declares any;
    /// `None` for fixed-size interfaces and remote bindings.
    pub bulk: Option<Arc<BulkArena>>,
    /// The binding's TLB working-set plan.
    pub touch: TouchPlan,
    /// The compiled copy plans, one per procedure — the bind-time stub
    /// specialization of Section 3.3. Produced by (and shared through) the
    /// runtime's plan cache, so re-imports of the same interface reuse one
    /// compilation.
    pub plans: Arc<InterfacePlans>,
    /// The server's E-stack pool, cached at import time so the call path
    /// never consults the runtime's global pool map (Section 3.4: nothing
    /// global on the critical path). Safe across termination: revocation
    /// stops calls before the runtime drops its reference.
    pub estack_pool: Arc<crate::estack::EStackPool>,
    /// The pairwise submission/completion ring for doorbell-batched calls,
    /// mapped at import time; `None` for remote bindings.
    pub ring: Option<Arc<crate::ring::CallRing>>,
    /// Set when either domain terminates; "this prevents any more
    /// out-calls from the domain, and prevents other domains from making
    /// any more in-calls" (Section 5.3).
    revoked: AtomicBool,
    /// "If the call is to a truly remote server (indicated by a bit in the
    /// Binding Object), then a branch is taken to a more conventional RPC
    /// stub" (Section 5.1).
    pub remote: bool,
    /// Running call statistics.
    pub stats: BindingStats,
}

impl BindingState {
    /// Creates binding state; used by [`LrpcRuntime::import`].
    // One argument per cached field: the constructor mirrors the struct,
    // and bundling them into a params struct would just move the list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        interface: Arc<CompiledInterface>,
        client: Arc<Domain>,
        server: Arc<Domain>,
        clerk: Arc<Clerk>,
        astacks: AStackSet,
        bulk: Option<Arc<BulkArena>>,
        touch: TouchPlan,
        plans: Arc<InterfacePlans>,
        estack_pool: Arc<crate::estack::EStackPool>,
        ring: Option<Arc<crate::ring::CallRing>>,
        remote: bool,
    ) -> BindingState {
        BindingState {
            interface,
            client,
            server,
            clerk,
            astacks,
            bulk,
            touch,
            plans,
            estack_pool,
            ring,
            revoked: AtomicBool::new(false),
            remote,
            stats: BindingStats::default(),
        }
    }

    /// True once the binding has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Acquire)
    }

    /// Revokes the binding.
    pub fn revoke(&self) {
        self.revoked.store(true, Ordering::Release);
    }

    /// True if this binding involves `domain` on either side.
    pub fn involves(&self, domain: &Domain) -> bool {
        self.client.id() == domain.id() || self.server.id() == domain.id()
    }
}

/// The client's handle on an imported interface.
///
/// Holds the kernel-validated Binding Object ([`RawHandle`]) plus the
/// client-side caches handed back at bind time (the A-stack lists).
pub struct Binding {
    rt: Arc<LrpcRuntime>,
    handle: RawHandle,
    state: Arc<BindingState>,
}

impl Binding {
    /// Creates the client-side binding; used by [`LrpcRuntime::import`].
    pub(crate) fn new(
        rt: Arc<LrpcRuntime>,
        handle: RawHandle,
        state: Arc<BindingState>,
    ) -> Binding {
        Binding { rt, handle, state }
    }

    /// The Binding Object presented to the kernel at each call.
    pub fn handle(&self) -> RawHandle {
        self.handle
    }

    /// The bound interface.
    pub fn interface(&self) -> &Arc<CompiledInterface> {
        &self.state.interface
    }

    /// The binding's internal state (A-stack lists etc.).
    pub fn state(&self) -> &Arc<BindingState> {
        &self.state
    }

    /// The runtime this binding belongs to.
    pub fn runtime(&self) -> &Arc<LrpcRuntime> {
        &self.rt
    }

    /// The copy plans compiled for this interface at import time.
    pub fn stub_plans(&self) -> &Arc<InterfacePlans> {
        &self.state.plans
    }

    /// Resolves a procedure name to its identifier.
    pub fn proc_index(&self, name: &str) -> Result<usize, CallError> {
        self.state
            .interface
            .procs
            .iter()
            .position(|p| p.name == name)
            .ok_or(CallError::BadProcedure { index: usize::MAX })
    }

    /// Makes an LRPC through this binding on the given CPU and thread.
    ///
    /// This is the client stub entry point: argument values are pushed on
    /// an A-stack, the kernel validates the Binding Object and transfers
    /// the thread into the server domain, the server procedure runs, and
    /// results return through the A-stack.
    pub fn call(
        &self,
        cpu_id: usize,
        thread: &Arc<Thread>,
        proc: &str,
        args: &[Value],
    ) -> Result<crate::call::CallOutcome, CallError> {
        let index = self.proc_index(proc)?;
        self.call_indexed(cpu_id, thread, index, args)
    }

    /// Like [`Binding::call`], addressing the procedure by identifier.
    pub fn call_indexed(
        &self,
        cpu_id: usize,
        thread: &Arc<Thread>,
        proc_index: usize,
        args: &[Value],
    ) -> Result<crate::call::CallOutcome, CallError> {
        let out = crate::call::lrpc_call(
            &self.rt,
            self.handle,
            &self.state,
            cpu_id,
            thread,
            proc_index,
            args,
            true,
        );
        if out.is_err() {
            self.state.stats.note_failure();
        }
        out
    }

    /// Like [`Binding::call_indexed`] but without metering, for tight
    /// throughput loops.
    pub fn call_unmetered(
        &self,
        cpu_id: usize,
        thread: &Arc<Thread>,
        proc_index: usize,
        args: &[Value],
    ) -> Result<crate::call::CallOutcome, CallError> {
        crate::call::lrpc_call(
            &self.rt,
            self.handle,
            &self.state,
            cpu_id,
            thread,
            proc_index,
            args,
            false,
        )
    }

    /// A copy of this binding presenting a *forged* Binding Object (the
    /// nonce is perturbed). Exists so tests and the experiment harness can
    /// demonstrate that "the kernel can detect a forged Binding Object".
    pub fn forged(&self) -> Binding {
        Binding {
            rt: Arc::clone(&self.rt),
            handle: RawHandle {
                id: self.handle.id,
                nonce: self.handle.nonce ^ 0xDEAD_BEEF,
            },
            state: Arc::clone(&self.state),
        }
    }
}
