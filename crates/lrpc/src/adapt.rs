//! Histogram-driven adaptive A-stack (and call-ring) sizing.
//!
//! Section 3.1 fixes the number of A-stacks per interface at bind time
//! ("a number of A-stacks equal to the number of simultaneous calls
//! allowed") — but the *right* number is a workload property, not an IDL
//! property. This module closes the feedback loop: a controller consumes
//! what one run observed per interface — A-stack occupancy high-water
//! marks and stall events from [`crate::astack::AStackSet`], batch-size
//! peaks and tail latency from [`crate::binding::BindingStats`] — and
//! recommends per-interface A-stack counts (plus ring depth for
//! batch-heavy interfaces) for the next import.
//!
//! The controller is deliberately a pure function of its snapshot: the
//! same [`ClassSnapshot`] always produces the same [`Recommendation`]
//! (the proptests pin this down), and every application of a plan is
//! emitted into the replay decision streams ([`replay::kind::ADAPT`]) so
//! a recorded adaptive run replays byte-identically.

use std::collections::BTreeMap;

/// Bounds and thresholds for the controller.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// Never recommend fewer A-stacks than this.
    pub min_astacks: u32,
    /// Never recommend more A-stacks than this.
    pub max_astacks: u32,
    /// Never recommend a shallower ring than this.
    pub min_ring_slots: u32,
    /// Never recommend a deeper ring than this.
    pub max_ring_slots: u32,
    /// Interfaces whose observed p99 exceeds this get headroom beyond
    /// their bare occupancy peak even without stall events.
    pub tail_threshold_ns: u64,
}

impl Default for AdaptConfig {
    fn default() -> AdaptConfig {
        AdaptConfig {
            min_astacks: 2,
            max_astacks: 64,
            min_ring_slots: 16,
            max_ring_slots: 256,
            tail_threshold_ns: 1_000_000,
        }
    }
}

/// What one run observed about one A-stack class of one interface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// A-stacks the class currently has.
    pub total: u64,
    /// High-water mark of simultaneously held A-stacks.
    pub peak_in_use: u64,
    /// Times an acquire found the class exhausted.
    pub stall_events: u64,
    /// Largest batch submitted through the binding.
    pub batch_peak: u64,
    /// Observed p99 call latency, in virtual nanoseconds (0 = unknown).
    pub tail_p99_ns: u64,
}

/// The controller's output for one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recommendation {
    /// Simultaneous-call count to allocate per procedure at import.
    pub astacks: u32,
    /// Submission/completion ring depth (slots).
    pub ring_slots: u32,
}

/// Recommends an A-stack count for one class.
///
/// Pure and monotone in the occupancy signals: more observed pressure
/// never yields a smaller recommendation, and the result is always inside
/// `[cfg.min_astacks, cfg.max_astacks]`.
pub fn recommend_class(cfg: &AdaptConfig, snap: &ClassSnapshot) -> u32 {
    // The floor every path shares: what the run actually held at once,
    // and room for the largest batch seen (a batch wants all its calls'
    // A-stacks concurrently to avoid mid-batch flush stalls).
    let mut want = snap.peak_in_use.max(snap.batch_peak);
    if snap.stall_events > 0 {
        // The class ran dry: the peak is a ceiling imposed by the old
        // total, not the demand. Double the old total and add headroom
        // proportional to how often it stalled (saturating, log-ish).
        let pressure = 64 - u64::from(snap.stall_events.leading_zeros());
        want = want
            .max(snap.total.saturating_mul(2))
            .saturating_add(pressure);
    } else if snap.tail_p99_ns > cfg.tail_threshold_ns && snap.peak_in_use >= snap.total {
        // No hard stall, but the tail is bad and the class was saturated
        // at its peak: give one headroom stack.
        want = want.saturating_add(1);
    }
    u32::try_from(want)
        .unwrap_or(u32::MAX)
        .clamp(cfg.min_astacks, cfg.max_astacks)
}

/// Recommends a ring depth from the observed batch peak: the next power
/// of two above twice the peak (submission and completion descriptors
/// share the ring), clamped to the configured bounds.
pub fn recommend_ring(cfg: &AdaptConfig, snap: &ClassSnapshot) -> u32 {
    let want = snap
        .batch_peak
        .saturating_mul(2)
        .max(u64::from(cfg.min_ring_slots))
        .next_power_of_two();
    u32::try_from(want)
        .unwrap_or(u32::MAX)
        .clamp(cfg.min_ring_slots, cfg.max_ring_slots)
}

/// Recommends both knobs for one interface.
pub fn recommend(cfg: &AdaptConfig, snap: &ClassSnapshot) -> Recommendation {
    Recommendation {
        astacks: recommend_class(cfg, snap),
        ring_slots: recommend_ring(cfg, snap),
    }
}

/// A full sizing plan: one recommendation per interface name. Attached to
/// [`crate::RuntimeConfig::adapt`], it overrides the PDL's static
/// `simultaneous_calls` guesses (and the default ring depth) at import
/// time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptPlan {
    /// Interface name → recommendation.
    pub per_interface: BTreeMap<String, Recommendation>,
}

impl AdaptPlan {
    /// The recommendation for `interface`, if the plan has one.
    pub fn get(&self, interface: &str) -> Option<Recommendation> {
        self.per_interface.get(interface).copied()
    }

    /// Packs a recommendation into one replay-event payload
    /// (`astacks << 32 | ring_slots`).
    pub fn pack(rec: Recommendation) -> u64 {
        (u64::from(rec.astacks) << 32) | u64::from(rec.ring_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_interface_gets_the_floor() {
        let cfg = AdaptConfig::default();
        let snap = ClassSnapshot::default();
        assert_eq!(recommend_class(&cfg, &snap), cfg.min_astacks);
        assert_eq!(recommend_ring(&cfg, &snap), cfg.min_ring_slots);
    }

    #[test]
    fn stalls_double_the_total() {
        let cfg = AdaptConfig::default();
        let snap = ClassSnapshot {
            total: 2,
            peak_in_use: 2,
            stall_events: 3,
            ..ClassSnapshot::default()
        };
        let rec = recommend_class(&cfg, &snap);
        assert!(rec >= 4, "stalled class at least doubles, got {rec}");
    }

    #[test]
    fn batch_peak_drives_ring_depth() {
        let cfg = AdaptConfig::default();
        let snap = ClassSnapshot {
            batch_peak: 24,
            ..ClassSnapshot::default()
        };
        assert_eq!(recommend_ring(&cfg, &snap), 64);
        assert!(recommend_class(&cfg, &snap) >= 24);
    }

    #[test]
    fn recommendations_respect_the_ceiling() {
        let cfg = AdaptConfig::default();
        let snap = ClassSnapshot {
            total: 1_000,
            peak_in_use: 1_000,
            stall_events: u64::MAX,
            batch_peak: 1_000,
            tail_p99_ns: u64::MAX,
        };
        assert_eq!(recommend_class(&cfg, &snap), cfg.max_astacks);
        assert_eq!(recommend_ring(&cfg, &snap), cfg.max_ring_slots);
    }

    #[test]
    fn saturated_bad_tail_gets_headroom() {
        let cfg = AdaptConfig::default();
        let snap = ClassSnapshot {
            total: 4,
            peak_in_use: 4,
            tail_p99_ns: cfg.tail_threshold_ns + 1,
            ..ClassSnapshot::default()
        };
        assert_eq!(recommend_class(&cfg, &snap), 5);
    }

    #[test]
    fn pack_round_trips_fields() {
        let rec = Recommendation {
            astacks: 7,
            ring_slots: 128,
        };
        let p = AdaptPlan::pack(rec);
        assert_eq!(p >> 32, 7);
        assert_eq!(p & 0xFFFF_FFFF, 128);
    }
}
