//! Cost models for conventional message-based RPC systems.
//!
//! Table 2 of the paper compares the Null cross-domain call on six systems:
//! theoretical minimum (one procedure call, two traps, two context
//! switches) versus measured, with the difference attributed to the
//! overhead sources of Section 2.3 — stubs, message buffers, access
//! validation, message transfer, scheduling, and dispatch. The per-system
//! component splits below are calibrated so each system's Null time equals
//! the published figure; the split across components follows the paper's
//! qualitative description of each system (e.g. SRC RPC skips access
//! validation and uses globally shared buffers; DASH eliminates the
//! intermediate kernel copy but pays elsewhere).

use firefly::cost::ProcessorTimings;
use firefly::time::Nanos;

/// How message payloads move between domains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyVariant {
    /// Classic path: client stack → message → kernel buffer → server
    /// message → server stack (Table 3 "Message Passing", copies A B C E).
    FullCopy,
    /// DASH-style: messages live in a region mapped into both kernel and
    /// user domains, eliminating the intermediate kernel copy (Table 3
    /// "Restricted Message Passing", copies A D E).
    Restricted,
    /// SRC-RPC-style: message buffers globally shared across all domains,
    /// acquired and released under a single global lock without kernel
    /// involvement; access validation is skipped.
    SharedBuffers,
}

/// Overhead components of one message-based RPC system.
#[derive(Clone, Copy, Debug)]
pub struct MsgRpcCost {
    /// System name as printed in Table 2.
    pub name: &'static str,
    /// The processor it ran on.
    pub hw: ProcessorTimings,
    /// Copy regime.
    pub variant: CopyVariant,
    /// Stub execution (marshaling both directions, Null call).
    pub stubs: Nanos,
    /// Message buffer allocation, management and flow control.
    pub buffer_mgmt: Nanos,
    /// Message enqueue/dequeue and inter-domain copying (fixed part).
    pub transfer: Nanos,
    /// Access validation of the sender on call and return.
    pub validation: Nanos,
    /// Receiver-side message interpretation and thread dispatch.
    pub dispatch: Nanos,
    /// Blocking the client's concrete thread and waking the server's
    /// (rendezvous), or the cheaper handoff-scheduling path.
    pub scheduling: Nanos,
    /// Marshaling cost per argument/result value.
    pub per_marshal_op: Nanos,
    /// Per-byte cost for client → server payload.
    pub per_byte_in: Nanos,
    /// Per-byte cost for server → client payload.
    pub per_byte_out: Nanos,
    /// Virtual time the global transfer lock is held per call (zero for
    /// systems without one). SRC RPC holds its single lock "during a large
    /// part of the RPC transfer path", capping Figure 2's throughput near
    /// 4 000 calls/s.
    pub global_lock_held: Nanos,
    /// Karger-style register passing: payloads up to this many bytes
    /// travel in registers, skipping buffers and copies entirely. The
    /// paper's footnote warns that such optimizations "exhibit a
    /// performance discontinuity once the parameters overflow the
    /// registers". `None` disables the optimization.
    pub register_window: Option<usize>,
    /// Cost of loading one 4-byte register on the register-passing path.
    pub per_register_op: Nanos,
}

impl MsgRpcCost {
    /// Sum of the overhead components (the Table 2 "Null Overhead"
    /// column).
    pub fn overhead(&self) -> Nanos {
        self.stubs
            + self.buffer_mgmt
            + self.transfer
            + self.validation
            + self.dispatch
            + self.scheduling
    }

    /// Expected Null latency (the Table 2 "Null (Actual)" column).
    pub fn null_actual(&self) -> Nanos {
        self.hw.theoretical_minimum() + self.overhead()
    }

    /// SRC RPC as shipped with Taos on the C-VAX Firefly: Null 464 µs
    /// (109 minimum + 355 overhead). Validation is skipped ("access
    /// validation is not performed on call and return"); the global lock
    /// covers buffer management, transfer, dispatch and most of
    /// scheduling.
    pub const fn src_rpc_taos() -> MsgRpcCost {
        MsgRpcCost {
            name: "Taos (SRC RPC)",
            hw: ProcessorTimings::cvax(),
            variant: CopyVariant::SharedBuffers,
            stubs: Nanos::from_micros(70),
            buffer_mgmt: Nanos::from_micros(60),
            transfer: Nanos::from_micros(80),
            validation: Nanos::ZERO,
            dispatch: Nanos::from_micros(50),
            scheduling: Nanos::from_micros(95),
            per_marshal_op: Nanos::from_micros(4),
            per_byte_in: Nanos::from_nanos(350),
            per_byte_out: Nanos::from_nanos(460),
            global_lock_held: Nanos::from_micros(250),
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// Accent on the PERQ: Null 2300 µs (444 minimum + 1856 overhead).
    pub const fn accent_perq() -> MsgRpcCost {
        MsgRpcCost {
            name: "Accent",
            hw: ProcessorTimings::perq(),
            variant: CopyVariant::FullCopy,
            stubs: Nanos::from_micros(450),
            buffer_mgmt: Nanos::from_micros(350),
            transfer: Nanos::from_micros(420),
            validation: Nanos::from_micros(150),
            dispatch: Nanos::from_micros(200),
            scheduling: Nanos::from_micros(286),
            per_marshal_op: Nanos::from_micros(18),
            per_byte_in: Nanos::from_nanos(1_400),
            per_byte_out: Nanos::from_nanos(1_400),
            global_lock_held: Nanos::ZERO,
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// Mach on the C-VAX: Null 754 µs (90 minimum + 664 overhead); handoff
    /// scheduling keeps the scheduling share low.
    pub const fn mach_cvax() -> MsgRpcCost {
        MsgRpcCost {
            name: "Mach",
            hw: ProcessorTimings::cvax_mach(),
            variant: CopyVariant::FullCopy,
            stubs: Nanos::from_micros(180),
            buffer_mgmt: Nanos::from_micros(110),
            transfer: Nanos::from_micros(150),
            validation: Nanos::from_micros(60),
            dispatch: Nanos::from_micros(74),
            scheduling: Nanos::from_micros(90),
            per_marshal_op: Nanos::from_micros(6),
            per_byte_in: Nanos::from_nanos(660),
            per_byte_out: Nanos::from_nanos(660),
            global_lock_held: Nanos::ZERO,
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// V on the 68020: Null 730 µs (170 minimum + 560 overhead); V's
    /// protocol is optimized for fixed 32-byte messages.
    pub const fn v_68020() -> MsgRpcCost {
        MsgRpcCost {
            name: "V",
            hw: ProcessorTimings::m68020(),
            variant: CopyVariant::FullCopy,
            stubs: Nanos::from_micros(150),
            buffer_mgmt: Nanos::from_micros(90),
            transfer: Nanos::from_micros(130),
            validation: Nanos::from_micros(50),
            dispatch: Nanos::from_micros(60),
            scheduling: Nanos::from_micros(80),
            per_marshal_op: Nanos::from_micros(5),
            per_byte_in: Nanos::from_nanos(700),
            per_byte_out: Nanos::from_nanos(700),
            global_lock_held: Nanos::ZERO,
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// Amoeba on the 68020: Null 800 µs (170 minimum + 630 overhead).
    pub const fn amoeba_68020() -> MsgRpcCost {
        MsgRpcCost {
            name: "Amoeba",
            hw: ProcessorTimings::m68020(),
            variant: CopyVariant::FullCopy,
            stubs: Nanos::from_micros(170),
            buffer_mgmt: Nanos::from_micros(100),
            transfer: Nanos::from_micros(140),
            validation: Nanos::from_micros(60),
            dispatch: Nanos::from_micros(70),
            scheduling: Nanos::from_micros(90),
            per_marshal_op: Nanos::from_micros(5),
            per_byte_in: Nanos::from_nanos(700),
            per_byte_out: Nanos::from_nanos(700),
            global_lock_held: Nanos::ZERO,
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// DASH on the 68020: Null 1590 µs (170 minimum + 1420 overhead); the
    /// restricted copy path eliminates the intermediate kernel copy.
    pub const fn dash_68020() -> MsgRpcCost {
        MsgRpcCost {
            name: "DASH",
            hw: ProcessorTimings::m68020(),
            variant: CopyVariant::Restricted,
            stubs: Nanos::from_micros(300),
            buffer_mgmt: Nanos::from_micros(250),
            transfer: Nanos::from_micros(350),
            validation: Nanos::from_micros(120),
            dispatch: Nanos::from_micros(180),
            scheduling: Nanos::from_micros(220),
            per_marshal_op: Nanos::from_micros(8),
            per_byte_in: Nanos::from_nanos(550),
            per_byte_out: Nanos::from_nanos(550),
            global_lock_held: Nanos::ZERO,
            register_window: None,
            per_register_op: Nanos::from_nanos(500),
        }
    }

    /// A V-style system with Karger register passing enabled: parameters
    /// totalling 32 bytes or fewer travel in registers ("V, for example,
    /// uses a message protocol that has been optimized for fixed-sized
    /// messages of 32 bytes. Karger describes compiler-driven techniques
    /// for passing parameters in registers during cross-domain calls").
    pub const fn v_with_registers() -> MsgRpcCost {
        let mut cost = MsgRpcCost::v_68020();
        cost.name = "V (register passing)";
        cost.register_window = Some(32);
        cost
    }

    /// All six Table 2 systems, in the paper's row order.
    pub fn table_2_systems() -> [MsgRpcCost; 6] {
        [
            MsgRpcCost::accent_perq(),
            MsgRpcCost::src_rpc_taos(),
            MsgRpcCost::mach_cvax(),
            MsgRpcCost::v_68020(),
            MsgRpcCost::amoeba_68020(),
            MsgRpcCost::dash_68020(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_totals_match_the_paper() {
        let expect = [
            ("Accent", 444, 2300),
            ("Taos (SRC RPC)", 109, 464),
            ("Mach", 90, 754),
            ("V", 170, 730),
            ("Amoeba", 170, 800),
            ("DASH", 170, 1590),
        ];
        for (cost, (name, min, actual)) in MsgRpcCost::table_2_systems().iter().zip(expect) {
            assert_eq!(cost.name, name);
            assert_eq!(
                cost.hw.theoretical_minimum(),
                Nanos::from_micros(min),
                "{name} minimum"
            );
            assert_eq!(
                cost.null_actual(),
                Nanos::from_micros(actual),
                "{name} actual"
            );
        }
    }

    #[test]
    fn src_rpc_overhead_is_355_microseconds() {
        assert_eq!(
            MsgRpcCost::src_rpc_taos().overhead(),
            Nanos::from_micros(355)
        );
    }

    #[test]
    fn src_rpc_skips_validation_and_holds_a_global_lock() {
        let src = MsgRpcCost::src_rpc_taos();
        assert_eq!(src.validation, Nanos::ZERO);
        assert!(src.global_lock_held >= Nanos::from_micros(200));
        // The lock cap implies roughly 4 000 calls/second.
        let cap = 1_000_000.0 / src.global_lock_held.as_micros_f64();
        assert!((3_800.0..=4_200.0).contains(&cap));
    }

    #[test]
    fn src_stub_time_is_about_70_microseconds() {
        // "it takes about 70 microseconds to execute the stubs for the
        // Null procedure call in SRC RPC."
        assert_eq!(MsgRpcCost::src_rpc_taos().stubs, Nanos::from_micros(70));
    }
}
