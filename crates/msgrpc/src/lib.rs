//! Conventional message-passing RPC — the baselines LRPC is measured
//! against.
//!
//! Section 2.3 of the paper dissects why cross-domain calls are slow in
//! conventional RPC systems: stub overhead, message buffer management,
//! access validation, message transfer with up to four copies, rendezvous
//! scheduling between concrete threads, context switches, and dispatch.
//! This crate implements that execution path for real, in three copy
//! variants:
//!
//! * [`model::CopyVariant::FullCopy`] — the classic four-copy path
//!   (Accent, Mach, V, Amoeba);
//! * [`model::CopyVariant::Restricted`] — DASH's pre-mapped message region
//!   that eliminates the intermediate kernel copy;
//! * [`model::CopyVariant::SharedBuffers`] — SRC RPC's globally shared
//!   buffers guarded by a single global lock, with access validation
//!   skipped (fast, but trading safety, and the lock caps multiprocessor
//!   throughput — Figure 2).
//!
//! [`model::MsgRpcCost`] carries calibrated per-system overhead models for
//! all six Table 2 systems; [`net::RemoteMachine`] implements the
//! conventional network RPC stub that LRPC's remote-bit branch targets
//! (Section 5.1).

pub mod internet;
pub mod marshal;
pub mod message;
pub mod model;
pub mod net;
pub mod receiver;
pub mod system;

pub use internet::Internet;
pub use message::{Message, Port};
pub use model::{CopyVariant, MsgRpcCost};
pub use net::{packets_for, RemoteMachine};
pub use receiver::{DispatchAction, ReceiverPool};
pub use system::{MsgCallOutcome, MsgHandler, MsgRpcSystem, MsgServer, GLOBAL_RPC_LOCK};
