//! A network of simulated machines.
//!
//! [`crate::net::RemoteMachine`] models the far side of a cross-machine
//! call as a bare handler table. [`Internet`] goes further: each host is a
//! *complete* simulated machine with its own kernel and LRPC runtime
//! (Taos-style: "network protocols" live in a domain of their own). An
//! incoming network RPC lands in the remote host's network-protocol
//! domain, which then makes an ordinary **local LRPC** to the server
//! domain on that machine — exactly the structure the paper describes for
//! Taos, where remote operation composes the network path with the local
//! cross-domain path.
//!
//! The caller's clock is charged for the wire time *and* for the remote
//! machine's processing time (the caller blocks for the full round trip).

use std::collections::HashMap;
use std::sync::Arc;

use firefly::cpu::Cpu;
use firefly::fault::FaultPlan;
use firefly::meter::{Meter, Phase};
use idl::stubgen::CompiledInterface;
use idl::wire::Value;
use kernel::thread::Thread;
use kernel::Domain;
use lrpc::{Binding, CallError, LrpcRuntime, RemoteReply, RemoteTransport};
use parking_lot::Mutex;

use crate::marshal;
use crate::net::{apply_packet_faults, packets_for, PACKET_PROCESSING, WIRE_TIME_PER_PACKET};

struct Host {
    rt: Arc<LrpcRuntime>,
    /// The network-protocol domain on that machine; incoming RPCs execute
    /// on its threads and bind from it to local servers.
    net_domain: Arc<Domain>,
    net_thread: Arc<Thread>,
    /// Interface name → binding from the network domain to the local
    /// exporter (bound lazily on first incoming call).
    bindings: Mutex<HashMap<String, Arc<Binding>>>,
}

/// A simulated Ethernet connecting whole machines.
pub struct Internet {
    hosts: Mutex<HashMap<String, Arc<Host>>>,
    fault: Mutex<Option<Arc<FaultPlan>>>,
}

impl Internet {
    /// An empty network.
    pub fn new() -> Arc<Internet> {
        Arc::new(Internet {
            hosts: Mutex::new(HashMap::new()),
            fault: Mutex::new(None),
        })
    }

    /// Installs a fault plan governing packet fates on this network.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock() = plan;
    }

    /// Attaches a machine (via its LRPC runtime) to the network under
    /// `hostname`. A network-protocol domain is created on that machine to
    /// receive incoming RPCs.
    pub fn attach(&self, hostname: impl Into<String>, rt: Arc<LrpcRuntime>) {
        let net_domain = rt.kernel().create_domain("network-protocols");
        let net_thread = rt.kernel().spawn_thread(&net_domain);
        self.hosts.lock().insert(
            hostname.into(),
            Arc::new(Host {
                rt,
                net_domain,
                net_thread,
                bindings: Mutex::new(HashMap::new()),
            }),
        );
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.lock().len()
    }

    fn find_exporter(&self, interface: &str) -> Option<Arc<Host>> {
        self.hosts
            .lock()
            .values()
            .find(|h| h.rt.exports(interface))
            .cloned()
    }

    fn remote_binding(&self, host: &Arc<Host>, interface: &str) -> Result<Arc<Binding>, CallError> {
        let mut bindings = host.bindings.lock();
        if let Some(b) = bindings.get(interface) {
            return Ok(Arc::clone(b));
        }
        let b = Arc::new(host.rt.import(&host.net_domain, interface)?);
        bindings.insert(interface.to_string(), Arc::clone(&b));
        Ok(b)
    }
}

impl RemoteTransport for Internet {
    fn exports(&self, interface: &str) -> bool {
        self.find_exporter(interface).is_some()
    }

    fn interface(&self, interface: &str) -> Option<Arc<CompiledInterface>> {
        let host = self.find_exporter(interface)?;
        let binding = self.remote_binding(&host, interface).ok()?;
        Some(Arc::clone(binding.interface()))
    }

    fn call(
        &self,
        interface: &str,
        proc_index: usize,
        args: &[Value],
        cpu: &Cpu,
        meter: &mut Meter,
    ) -> Result<RemoteReply, CallError> {
        let host = self
            .find_exporter(interface)
            .ok_or_else(|| CallError::ImportTimeout {
                name: interface.to_string(),
            })?;
        let binding = self.remote_binding(&host, interface)?;
        let proc = binding
            .interface()
            .procs
            .get(proc_index)
            .ok_or(CallError::BadProcedure { index: proc_index })?;

        // Request packets over the wire.
        let request = marshal::marshal_args(proc, args)?;
        let req_packets = packets_for(request.len());
        let req_cost = (PACKET_PROCESSING * 2 + WIRE_TIME_PER_PACKET) * req_packets;
        cpu.charge(req_cost);
        meter.record_span(Phase::Network, req_cost, cpu.now());
        let plan = self.fault.lock().clone();
        apply_packet_faults(plan.as_ref(), "internet:req", req_packets, cpu, meter)?;

        // The remote machine's network-protocol domain makes an ordinary
        // LRPC to the local exporter. The caller blocks for all of it, so
        // the remote processing time lands on the caller's clock too.
        let remote_cpu = host.rt.kernel().machine().cpu(0);
        let before = remote_cpu.now();
        let out = binding.call_indexed(0, &host.net_thread, proc_index, args)?;
        let remote_time = remote_cpu.now() - before;
        cpu.charge(remote_time);
        meter.record_span(Phase::Network, remote_time, cpu.now());

        // Reply packets.
        let reply = marshal::marshal_reply(proc, out.ret.as_ref(), &out.outs)?;
        let reply_packets = packets_for(reply.len());
        let reply_cost = (PACKET_PROCESSING * 2 + WIRE_TIME_PER_PACKET) * reply_packets;
        cpu.charge(reply_cost);
        meter.record_span(Phase::Network, reply_cost, cpu.now());
        apply_packet_faults(plan.as_ref(), "internet:reply", reply_packets, cpu, meter)?;

        Ok((out.ret, out.outs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;
    use firefly::time::Nanos;
    use kernel::kernel::Kernel;
    use lrpc::{Handler, Reply, RuntimeConfig, ServerCtx};

    fn machine_rt(caching: bool) -> Arc<LrpcRuntime> {
        LrpcRuntime::with_config(
            Kernel::new(Machine::new(1, CostModel::cvax_firefly())),
            RuntimeConfig {
                domain_caching: caching,
                ..RuntimeConfig::default()
            },
        )
    }

    #[test]
    fn remote_call_composes_wire_and_remote_lrpc() {
        // Machine A (client) and machine B (file server).
        let rt_a = machine_rt(false);
        let rt_b = machine_rt(false);
        let net = Internet::new();
        net.attach("alpha", Arc::clone(&rt_a));
        net.attach("beta", Arc::clone(&rt_b));
        assert_eq!(net.host_count(), 2);

        // Beta exports a file server — locally, as any server would.
        let server = rt_b.kernel().create_domain("file-server");
        rt_b.export(
            &server,
            "interface Files { procedure Size(handle: int32) -> int32; }",
            vec![
                Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone())))
                    as Handler,
            ],
        )
        .unwrap();

        // Alpha imports it remotely through the network.
        rt_a.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);
        let app = rt_a.kernel().create_domain("app");
        let thread = rt_a.kernel().spawn_thread(&app);
        let far = rt_a.import_remote(&app, "Files").expect("remote import");

        let out = far
            .call(0, &thread, "Size", &[Value::Int32(99)])
            .expect("remote call");
        assert_eq!(out.ret, Some(Value::Int32(99)));
        // The round trip includes two one-packet wire legs plus the remote
        // machine's *actual* local LRPC (measurable on B's clock).
        assert!(out.elapsed > Nanos::from_micros(2_000), "{}", out.elapsed);
        assert!(
            rt_b.kernel().machine().cpu(0).now() >= Nanos::from_micros(157),
            "the remote LRPC really ran on machine B"
        );
    }

    #[test]
    fn remote_server_termination_propagates_as_an_error() {
        let rt_a = machine_rt(false);
        let rt_b = machine_rt(false);
        let net = Internet::new();
        net.attach("alpha", Arc::clone(&rt_a));
        net.attach("beta", Arc::clone(&rt_b));

        let server = rt_b.kernel().create_domain("doomed");
        rt_b.export(
            &server,
            "interface D { procedure P(); }",
            vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
        )
        .unwrap();
        rt_a.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);
        let app = rt_a.kernel().create_domain("app");
        let thread = rt_a.kernel().spawn_thread(&app);
        let far = rt_a.import_remote(&app, "D").expect("remote import");
        far.call(0, &thread, "P", &[]).expect("server alive");

        // The server dies on machine B; the remote caller sees the
        // failure, not a hang.
        rt_b.terminate_domain(&server);
        let err = far.call(0, &thread, "P", &[]).unwrap_err();
        // Depending on where the teardown is observed, the caller sees the
        // revoked binding or the withdrawn export.
        assert!(
            matches!(
                err,
                CallError::BindingRevoked
                    | CallError::InvalidBinding(_)
                    | CallError::DomainDead
                    | CallError::ImportTimeout { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn unknown_interfaces_are_not_found_on_any_host() {
        let net = Internet::new();
        net.attach("only", machine_rt(false));
        assert!(!net.exports("Ghost"));
        assert!(net.interface("Ghost").is_none());
    }
}
