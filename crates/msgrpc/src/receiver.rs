//! Self-dispatching receiver pools.
//!
//! Section 2.3, on conventional RPC's dispatch overhead: "A receiver
//! thread in the server domain must interpret the message and dispatch a
//! thread to execute the call. If the receiver is self-dispatching, it
//! must ensure that another thread remains to collect messages that may
//! arrive before the receiver finishes to prevent caller serialization."
//!
//! [`ReceiverPool`] models exactly that discipline over the server's
//! concrete threads: threads are either *receiving* (parked on the port)
//! or *working* (executing a call). A receiver that self-dispatches must
//! first guarantee a successor receiver — spawning one if it was the
//! last — so the invariant "at least one receiver while any thread works"
//! holds, at the cost of the extra thread-management work LRPC avoids
//! entirely.

use std::sync::Arc;

use kernel::kernel::Kernel;
use kernel::thread::{Thread, ThreadStatus};
use kernel::Domain;
use parking_lot::Mutex;

/// What `begin_dispatch` had to do to keep a receiver available.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DispatchAction {
    /// Another receiver was already parked; the dispatcher just started
    /// working.
    UsedExisting,
    /// The dispatcher was the last receiver and had to create a successor
    /// before taking the call (the expensive path).
    SpawnedSuccessor,
}

struct PoolInner {
    receiving: Vec<Arc<Thread>>,
    working: Vec<Arc<Thread>>,
    spawned: u64,
}

/// The concrete threads of one message-RPC server.
pub struct ReceiverPool {
    kernel: Arc<Kernel>,
    domain: Arc<Domain>,
    inner: Mutex<PoolInner>,
}

impl ReceiverPool {
    /// Creates a pool with `initial` receiver threads parked on the port.
    pub fn new(kernel: Arc<Kernel>, domain: Arc<Domain>, initial: usize) -> ReceiverPool {
        let receiving = (0..initial.max(1))
            .map(|_| {
                let t = kernel.spawn_thread(&domain);
                t.set_status(ThreadStatus::Blocked); // Parked on the port.
                t
            })
            .collect();
        ReceiverPool {
            kernel,
            domain,
            inner: Mutex::new(PoolInner {
                receiving,
                working: Vec::new(),
                spawned: 0,
            }),
        }
    }

    /// A receiver picked up a message and self-dispatches: it moves to the
    /// working set, first ensuring a successor receiver exists.
    ///
    /// Returns the dispatching thread and what had to happen.
    pub fn begin_dispatch(&self) -> (Arc<Thread>, DispatchAction) {
        let mut inner = self.inner.lock();
        let worker = match inner.receiving.pop() {
            Some(t) => t,
            None => {
                // No receiver at all (all working): a fresh thread takes
                // the call. This also counts as the expensive path.
                inner.spawned += 1;
                self.kernel.spawn_thread(&self.domain)
            }
        };
        worker.set_status(ThreadStatus::Running);
        let action = if inner.receiving.is_empty() {
            // The dispatcher was the last receiver: create a successor so
            // callers are not serialized behind this call.
            let successor = self.kernel.spawn_thread(&self.domain);
            successor.set_status(ThreadStatus::Blocked);
            inner.receiving.push(successor);
            inner.spawned += 1;
            DispatchAction::SpawnedSuccessor
        } else {
            DispatchAction::UsedExisting
        };
        inner.working.push(Arc::clone(&worker));
        (worker, action)
    }

    /// The worker finished its call and returns to receiving.
    pub fn end_dispatch(&self, worker: &Arc<Thread>) {
        let mut inner = self.inner.lock();
        inner.working.retain(|t| t.id() != worker.id());
        worker.set_status(ThreadStatus::Blocked);
        inner.receiving.push(Arc::clone(worker));
    }

    /// Threads currently parked receiving.
    pub fn receiving_count(&self) -> usize {
        self.inner.lock().receiving.len()
    }

    /// Threads currently executing calls.
    pub fn working_count(&self) -> usize {
        self.inner.lock().working.len()
    }

    /// Successor threads that had to be created because a last receiver
    /// self-dispatched — pure overhead relative to LRPC, where the
    /// *client's* thread does the work and no receiver exists at all.
    pub fn spawned_successors(&self) -> u64 {
        self.inner.lock().spawned
    }

    /// The invariant the paper states: while any thread is working, at
    /// least one receiver remains to collect messages.
    pub fn invariant_holds(&self) -> bool {
        let inner = self.inner.lock();
        inner.working.is_empty() || !inner.receiving.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::cost::CostModel;
    use firefly::cpu::Machine;

    fn pool(initial: usize) -> ReceiverPool {
        let kernel = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let domain = kernel.create_domain("server");
        ReceiverPool::new(kernel, domain, initial)
    }

    #[test]
    fn dispatch_with_spare_receivers_is_cheap() {
        let p = pool(3);
        let (w, action) = p.begin_dispatch();
        assert_eq!(action, DispatchAction::UsedExisting);
        assert_eq!(p.receiving_count(), 2);
        assert_eq!(p.working_count(), 1);
        assert!(p.invariant_holds());
        p.end_dispatch(&w);
        assert_eq!(p.receiving_count(), 3);
        assert_eq!(p.spawned_successors(), 0);
    }

    #[test]
    fn last_receiver_spawns_a_successor() {
        let p = pool(1);
        let (w, action) = p.begin_dispatch();
        assert_eq!(action, DispatchAction::SpawnedSuccessor);
        assert_eq!(p.receiving_count(), 1, "a successor must remain parked");
        assert!(p.invariant_holds());
        assert_eq!(p.spawned_successors(), 1);
        p.end_dispatch(&w);
        assert_eq!(p.receiving_count(), 2);
    }

    #[test]
    fn burst_of_dispatches_never_serializes_callers() {
        let p = pool(2);
        let mut workers = Vec::new();
        for _ in 0..8 {
            let (w, _) = p.begin_dispatch();
            assert!(p.invariant_holds(), "a receiver must always remain");
            workers.push(w);
        }
        assert_eq!(p.working_count(), 8);
        assert!(p.receiving_count() >= 1);
        // Everything drains back.
        for w in &workers {
            p.end_dispatch(w);
        }
        assert_eq!(p.working_count(), 0);
    }

    #[test]
    fn concurrent_dispatch_holds_the_invariant() {
        let p = Arc::new(pool(2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..100 {
                        let (w, _) = p.begin_dispatch();
                        assert!(p.invariant_holds());
                        p.end_dispatch(&w);
                    }
                });
            }
        });
        assert_eq!(p.working_count(), 0);
    }
}
