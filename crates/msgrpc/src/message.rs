//! Messages and ports.
//!
//! Conventional RPC moves arguments in messages: "Messages need to be
//! allocated and passed between the client and server domains. ... The
//! sender must enqueue the message, which must later be dequeued by the
//! receiver. Flow-control of these queues is often necessary"
//! (Section 2.3). [`Port`] is a bounded message queue with exactly that
//! flow control.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};

/// One RPC message: a header (procedure identifier, direction) plus the
/// marshaled payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Procedure identifier.
    pub proc_index: usize,
    /// True for a reply message.
    pub is_reply: bool,
    /// Marshaled values.
    pub payload: Bytes,
}

impl Message {
    /// A call message.
    pub fn call(proc_index: usize, payload: impl Into<Bytes>) -> Message {
        Message {
            proc_index,
            is_reply: false,
            payload: payload.into(),
        }
    }

    /// A reply message.
    pub fn reply(proc_index: usize, payload: impl Into<Bytes>) -> Message {
        Message {
            proc_index,
            is_reply: true,
            payload: payload.into(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Copies this message into a fresh buffer — one hop of the
    /// multi-copy message path (a real `memcpy`, so the Table 3 copy
    /// counting reflects actual behaviour).
    pub fn copy_hop(&self) -> Message {
        let mut buf = BytesMut::with_capacity(self.payload.len());
        buf.extend_from_slice(&self.payload);
        Message {
            proc_index: self.proc_index,
            is_reply: self.is_reply,
            payload: buf.freeze(),
        }
    }
}

/// A bounded, flow-controlled message queue.
pub struct Port {
    queue: Mutex<VecDeque<Message>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl Port {
    /// A port holding at most `capacity` undelivered messages.
    pub fn new(capacity: usize) -> Port {
        Port {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues, blocking while the port is full (flow control). Returns
    /// `false` on timeout.
    pub fn enqueue(&self, msg: Message, timeout: Duration) -> bool {
        let mut q = self.queue.lock();
        let deadline = std::time::Instant::now() + timeout;
        while q.len() >= self.capacity {
            if self.not_full.wait_until(&mut q, deadline).timed_out() {
                return false;
            }
        }
        q.push_back(msg);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues, blocking while the port is empty. Returns `None` on
    /// timeout.
    pub fn dequeue(&self, timeout: Duration) -> Option<Message> {
        let mut q = self.queue.lock();
        let deadline = std::time::Instant::now() + timeout;
        while q.is_empty() {
            if self.not_empty.wait_until(&mut q, deadline).timed_out() {
                return None;
            }
        }
        let msg = q.pop_front();
        self.not_full.notify_one();
        msg
    }

    /// Messages currently queued.
    pub fn depth(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn fifo_order() {
        let p = Port::new(4);
        assert!(p.enqueue(Message::call(1, vec![1]), T));
        assert!(p.enqueue(Message::call(2, vec![2]), T));
        assert_eq!(p.dequeue(T).unwrap().proc_index, 1);
        assert_eq!(p.dequeue(T).unwrap().proc_index, 2);
        assert!(p.dequeue(T).is_none(), "empty port times out");
    }

    #[test]
    fn flow_control_blocks_when_full() {
        let p = Port::new(1);
        assert!(p.enqueue(Message::call(1, vec![]), T));
        assert!(
            !p.enqueue(Message::call(2, vec![]), T),
            "full port times out"
        );
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn blocked_sender_wakes_on_dequeue() {
        let p = Arc::new(Port::new(1));
        p.enqueue(Message::call(1, vec![]), T);
        let sender = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || p.enqueue(Message::call(2, vec![]), Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.dequeue(T).unwrap().proc_index, 1);
        assert!(sender.join().unwrap());
        assert_eq!(p.dequeue(T).unwrap().proc_index, 2);
    }

    #[test]
    fn copy_hop_preserves_contents() {
        let m = Message::call(7, vec![1, 2, 3]);
        let hop = m.copy_hop();
        assert_eq!(hop, m);
    }
}
