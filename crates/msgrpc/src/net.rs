//! Simulated network transport for truly remote calls (Section 5.1).
//!
//! When the Binding Object's remote bit is set, the LRPC client stub
//! branches to a conventional RPC stub that marshals arguments into
//! Ethernet packets and ships them to the remote machine. "Most existing
//! RPC protocols are built on simple packet exchange protocols, and
//! multi-packet calls have performance problems" — the per-packet costs
//! below make that concrete (and justify the Ethernet-sized A-stack
//! default of Section 5.2).

use std::collections::HashMap;
use std::sync::Arc;

use firefly::cpu::Cpu;
use firefly::fault::FaultPlan;
use firefly::meter::{Meter, Phase};
use firefly::time::Nanos;
use idl::layout::ETHERNET_PACKET_SIZE;
use idl::stubgen::{compile, CompiledInterface};
use idl::wire::Value;
use lrpc::{CallError, RemoteReply, RemoteTransport, Reply};
use parking_lot::Mutex;

use crate::marshal;
use crate::system::MsgHandler;

/// Wire time per Ethernet packet (one direction).
pub const WIRE_TIME_PER_PACKET: Nanos = Nanos::from_micros(650);

/// Protocol processing per packet per side (packetize/checksum/receive).
pub const PACKET_PROCESSING: Nanos = Nanos::from_micros(300);

/// Remote-side dispatch overhead per call.
pub const REMOTE_DISPATCH: Nanos = Nanos::from_micros(90);

/// Stub time per call (conventional marshaling stubs).
pub const NETWORK_STUBS: Nanos = Nanos::from_micros(70);

struct RemoteExport {
    interface: Arc<CompiledInterface>,
    handlers: Vec<MsgHandler>,
}

/// A machine reachable over the simulated Ethernet.
pub struct RemoteMachine {
    name: String,
    exports: Mutex<HashMap<String, Arc<RemoteExport>>>,
    fault: Mutex<Option<Arc<FaultPlan>>>,
}

impl RemoteMachine {
    /// A remote machine with the given host name.
    pub fn new(name: impl Into<String>) -> Arc<RemoteMachine> {
        Arc::new(RemoteMachine {
            name: name.into(),
            exports: Mutex::new(HashMap::new()),
            fault: Mutex::new(None),
        })
    }

    /// The host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a fault plan governing this machine's packet fates.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock() = plan;
    }

    /// Exports an interface on the remote machine.
    pub fn export(&self, idl_src: &str, handlers: Vec<MsgHandler>) -> Result<(), CallError> {
        let def = idl::parse(idl_src)
            .map_err(|e| CallError::ServerFault(format!("interface parse error: {e}")))?;
        let interface = Arc::new(compile(&def));
        if interface.procs.len() != handlers.len() {
            return Err(CallError::ServerFault("handler count mismatch".into()));
        }
        self.exports.lock().insert(
            def.name.clone(),
            Arc::new(RemoteExport {
                interface,
                handlers,
            }),
        );
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Arc<RemoteExport>> {
        self.exports.lock().get(name).cloned()
    }
}

/// Packets needed for a payload (at least one — the header travels even
/// for empty payloads).
pub fn packets_for(bytes: usize) -> u64 {
    (bytes.max(1)).div_ceil(ETHERNET_PACKET_SIZE) as u64
}

/// Runs one wire leg of `count` packets through the fault plan: each
/// retransmission re-pays the full per-packet send cost, duplicates bill
/// the receiver one extra processing charge, delays ride on the wire, and
/// a packet lost [`firefly::fault::MAX_RETRANSMISSIONS`] times fails the
/// call with [`CallError::Network`]. With no plan (or all-zero knobs) this
/// charges nothing and always succeeds.
pub fn apply_packet_faults(
    plan: Option<&Arc<FaultPlan>>,
    site: &str,
    count: u64,
    cpu: &Cpu,
    meter: &mut Meter,
) -> Result<(), CallError> {
    let Some(plan) = plan else { return Ok(()) };
    let per_send = PACKET_PROCESSING * 2 + WIRE_TIME_PER_PACKET;
    for _ in 0..count {
        let fate = plan.packet_fate(site);
        let mut extra = FaultPlan::retransmission_cost(&fate, per_send);
        if fate.duplicated {
            extra += PACKET_PROCESSING;
        }
        if !extra.is_zero() {
            cpu.charge(extra);
            meter.record_span(Phase::Network, extra, cpu.now());
        }
        if fate.lost_forever {
            return Err(CallError::Network(format!(
                "packet lost on {site} after {} retransmissions",
                fate.retransmissions
            )));
        }
    }
    Ok(())
}

impl RemoteTransport for RemoteMachine {
    fn exports(&self, interface: &str) -> bool {
        self.lookup(interface).is_some()
    }

    fn interface(&self, interface: &str) -> Option<Arc<CompiledInterface>> {
        self.lookup(interface).map(|e| Arc::clone(&e.interface))
    }

    fn call(
        &self,
        interface: &str,
        proc_index: usize,
        args: &[Value],
        cpu: &Cpu,
        meter: &mut Meter,
    ) -> Result<RemoteReply, CallError> {
        let export = self
            .lookup(interface)
            .ok_or_else(|| CallError::ImportTimeout {
                name: interface.to_string(),
            })?;
        let proc = export
            .interface
            .procs
            .get(proc_index)
            .ok_or(CallError::BadProcedure { index: proc_index })?;

        // Conventional stubs marshal the arguments.
        cpu.charge(NETWORK_STUBS);
        meter.record_span(Phase::Marshal, NETWORK_STUBS, cpu.now());
        let payload = marshal::marshal_args(proc, args)?;

        // Request packets: packetize, wire, receive.
        let req_packets = packets_for(payload.len());
        let req_cost =
            (PACKET_PROCESSING * 2 + WIRE_TIME_PER_PACKET) * req_packets + REMOTE_DISPATCH;
        cpu.charge(req_cost);
        meter.record_span(Phase::Network, req_cost, cpu.now());
        let plan = self.fault.lock().clone();
        apply_packet_faults(
            plan.as_ref(),
            &format!("net:{}:req", self.name),
            req_packets,
            cpu,
            meter,
        )?;

        // The remote server runs the procedure.
        let vals = marshal::unmarshal_args(proc, &payload)?;
        let handler = &export.handlers[proc_index];
        let Reply { ret, outs } = handler(&vals)?;

        // Reply packets.
        let reply_payload = marshal::marshal_reply(proc, ret.as_ref(), &outs)?;
        let reply_packets = packets_for(reply_payload.len());
        let reply_cost = (PACKET_PROCESSING * 2 + WIRE_TIME_PER_PACKET) * reply_packets;
        cpu.charge(reply_cost);
        meter.record_span(Phase::Network, reply_cost, cpu.now());
        apply_packet_faults(
            plan.as_ref(),
            &format!("net:{}:reply", self.name),
            reply_packets,
            cpu,
            meter,
        )?;

        let (ret, outs) = marshal::unmarshal_reply(proc, &reply_payload)?;
        Ok((ret, outs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_math() {
        assert_eq!(packets_for(0), 1);
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(1500), 1);
        assert_eq!(packets_for(1501), 2);
        assert_eq!(packets_for(4096), 3);
    }

    #[test]
    fn remote_null_is_in_the_milliseconds() {
        // Even an empty call pays stubs + two packets of wire and
        // processing time: far beyond any cross-domain call, which is why
        // "a cross-machine RPC is slower than even a slow cross-domain
        // RPC".
        let machine = firefly::cpu::Machine::cvax_uniprocessor();
        let remote = RemoteMachine::new("fileserver");
        remote
            .export(
                "interface R { procedure Null(); }",
                vec![Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler],
            )
            .unwrap();
        let cpu = machine.cpu(0);
        let mut meter = Meter::enabled();
        let (ret, outs) = remote.call("R", 0, &[], cpu, &mut meter).unwrap();
        assert_eq!(ret, None);
        assert!(outs.is_empty());
        let elapsed = cpu.now();
        assert!(
            elapsed >= Nanos::from_micros(2_000),
            "remote Null must cost milliseconds, got {elapsed}"
        );
    }

    #[test]
    fn multi_packet_calls_cost_proportionally_more() {
        let machine = firefly::cpu::Machine::cvax_uniprocessor();
        let remote = RemoteMachine::new("blob");
        remote
            .export(
                "interface B { procedure Put(data: var bytes[8192]); }",
                vec![Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler],
            )
            .unwrap();
        let cpu = machine.cpu(0);
        let mut meter = Meter::enabled();
        remote
            .call("B", 0, &[Value::Var(vec![0; 100])], cpu, &mut meter)
            .unwrap();
        let small = cpu.now();
        remote
            .call("B", 0, &[Value::Var(vec![0; 6000])], cpu, &mut meter)
            .unwrap();
        let big = cpu.now() - small;
        assert!(big > small, "6000 bytes need 4 packets, 100 bytes need 1");
    }

    #[test]
    fn unknown_interface_and_procedure_error() {
        let machine = firefly::cpu::Machine::cvax_uniprocessor();
        let remote = RemoteMachine::new("x");
        let cpu = machine.cpu(0);
        let mut meter = Meter::disabled();
        assert!(remote.call("Nope", 0, &[], cpu, &mut meter).is_err());
        remote
            .export(
                "interface Y { procedure P(); }",
                vec![Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler],
            )
            .unwrap();
        assert!(remote.call("Y", 5, &[], cpu, &mut meter).is_err());
        assert!(remote.exports("Y"));
        assert!(!remote.exports("Nope"));
    }
}
