//! Message marshaling.
//!
//! Conventional RPC stubs marshal every argument into the message and
//! unmarshal on the far side — the generic path LRPC's optimized stubs
//! avoid for simple types.

use idl::stubgen::CompiledProc;
use idl::wire::{decode, decode_checked, encode, Value};
use lrpc::CallError;

fn stub_err(e: idl::wire::WireError) -> CallError {
    CallError::Stub(idl::stubvm::StubError::Wire(e))
}

/// Marshals the in-direction arguments of a call, in declaration order.
pub fn marshal_args(proc: &CompiledProc, args: &[Value]) -> Result<Vec<u8>, CallError> {
    if args.len() != proc.def.params.len() {
        return Err(CallError::Stub(idl::stubvm::StubError::ArgCount {
            expected: proc.def.params.len(),
            got: args.len(),
        }));
    }
    let mut out = Vec::new();
    for (v, p) in args.iter().zip(&proc.def.params) {
        if p.dir.is_in() {
            encode(v, &p.ty, &mut out).map_err(stub_err)?;
        }
    }
    Ok(out)
}

/// Unmarshals a call message into one value per declared parameter
/// (out-only parameters get zero placeholders). Conformance checks run
/// here, after the copy — the conventional ordering the paper contrasts
/// with LRPC's folded check.
pub fn unmarshal_args(proc: &CompiledProc, bytes: &[u8]) -> Result<Vec<Value>, CallError> {
    let mut vals = Vec::with_capacity(proc.def.params.len());
    let mut pos = 0;
    for p in &proc.def.params {
        if p.dir.is_in() {
            let (v, used) = decode_checked(&bytes[pos..], &p.ty).map_err(stub_err)?;
            pos += used;
            vals.push(v);
        } else {
            vals.push(Value::zero_of(&p.ty));
        }
    }
    Ok(vals)
}

/// Marshals a reply: the return value (if declared) followed by every
/// out-direction parameter in declaration order.
pub fn marshal_reply(
    proc: &CompiledProc,
    ret: Option<&Value>,
    outs: &[(usize, Value)],
) -> Result<Vec<u8>, CallError> {
    let mut out = Vec::new();
    if let Some(ret_ty) = &proc.def.ret {
        let v = ret.ok_or(CallError::Stub(idl::stubvm::StubError::MissingResult))?;
        encode(v, ret_ty, &mut out).map_err(stub_err)?;
    }
    for (i, p) in proc.def.params.iter().enumerate() {
        if p.dir.is_out() {
            let v = outs
                .iter()
                .find(|(j, _)| *j == i)
                .map(|(_, v)| v)
                .ok_or(CallError::Stub(idl::stubvm::StubError::MissingResult))?;
            encode(v, &p.ty, &mut out).map_err(stub_err)?;
        }
    }
    Ok(out)
}

/// Unmarshals a reply into the return value and out-parameter values.
pub fn unmarshal_reply(
    proc: &CompiledProc,
    bytes: &[u8],
) -> Result<idl::stubvm::FetchedResults, CallError> {
    let mut pos = 0;
    let ret = match &proc.def.ret {
        Some(ret_ty) => {
            let (v, used) = decode(&bytes[pos..], ret_ty).map_err(stub_err)?;
            pos += used;
            Some(v)
        }
        None => None,
    };
    let mut outs = Vec::new();
    for (i, p) in proc.def.params.iter().enumerate() {
        if p.dir.is_out() {
            let (v, used) = decode(&bytes[pos..], &p.ty).map_err(stub_err)?;
            pos += used;
            outs.push((i, v));
        }
    }
    Ok((ret, outs))
}

/// Total in-direction payload bytes of a call (for per-byte charging).
pub fn in_bytes(proc: &CompiledProc, args: &[Value]) -> usize {
    marshal_args(proc, args).map(|v| v.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl::stubgen::compile;

    fn proc(src: &str) -> CompiledProc {
        compile(&idl::parse(src).unwrap()).procs[0].clone()
    }

    #[test]
    fn args_roundtrip() {
        let p = proc("interface I { procedure Add(a: int32, b: int32) -> int32; }");
        let bytes = marshal_args(&p, &[Value::Int32(3), Value::Int32(-4)]).unwrap();
        assert_eq!(bytes.len(), 8);
        let vals = unmarshal_args(&p, &bytes).unwrap();
        assert_eq!(vals, vec![Value::Int32(3), Value::Int32(-4)]);
    }

    #[test]
    fn out_params_are_skipped_on_call_and_carried_on_reply() {
        let p = proc("interface I { procedure Read(h: int32, buf: out bytes[8]) -> int32; }");
        let bytes = marshal_args(&p, &[Value::Int32(5), Value::Bytes(vec![0; 8])]).unwrap();
        assert_eq!(bytes.len(), 4, "only the handle travels in");
        let reply =
            marshal_reply(&p, Some(&Value::Int32(8)), &[(1, Value::Bytes(vec![7; 8]))]).unwrap();
        let (ret, outs) = unmarshal_reply(&p, &reply).unwrap();
        assert_eq!(ret, Some(Value::Int32(8)));
        assert_eq!(outs, vec![(1, Value::Bytes(vec![7; 8]))]);
    }

    #[test]
    fn conformance_is_checked_after_the_copy() {
        let p = proc("interface I { procedure P(n: cardinal); }");
        let bytes = marshal_args(&p, &[Value::Cardinal(-1)]).unwrap();
        assert!(unmarshal_args(&p, &bytes).is_err());
    }

    #[test]
    fn missing_result_is_detected() {
        let p = proc("interface I { procedure F() -> int32; }");
        assert!(marshal_reply(&p, None, &[]).is_err());
    }
}
