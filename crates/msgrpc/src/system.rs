//! The conventional message-passing RPC engine.
//!
//! Implements the execution path the paper's Section 2.3 dissects: stub
//! marshaling, message buffer management, access validation, message
//! transfer (with the per-variant copy chain), rendezvous scheduling
//! between the client's and server's concrete threads, context switches,
//! and receiver-side dispatch. Every copy is a real `memcpy` tagged with
//! its Table 3 letter; every step charges its calibrated share of the
//! system's overhead model.

use std::sync::Arc;
use std::time::Duration;

use firefly::cpu::{Cpu, Machine};
use firefly::meter::{Meter, Phase};
use firefly::time::Nanos;
use idl::copyops::{CopyLog, CopyOp};
use idl::stubgen::{compile, CompiledInterface, CompiledProc};
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::nameserver::NameServer;
use kernel::thread::{Thread, ThreadStatus};
use kernel::Domain;
use lrpc::{CallError, Reply};
use parking_lot::Mutex;

use crate::marshal;
use crate::message::{Message, Port};
use crate::model::{CopyVariant, MsgRpcCost};
use crate::receiver::ReceiverPool;

/// Name of SRC RPC's single global transfer lock, for lock attribution.
pub const GLOBAL_RPC_LOCK: &str = "src-global-lock";

/// A server procedure body in the message-RPC world (no thread migration:
/// the server's own concrete thread runs it).
pub type MsgHandler = Box<dyn Fn(&[Value]) -> Result<Reply, CallError> + Send + Sync>;

/// One exported message-RPC service.
pub struct MsgServer {
    domain: Arc<Domain>,
    interface: Arc<CompiledInterface>,
    handlers: Vec<MsgHandler>,
    port: Port,
    /// Concrete threads fixed in the server domain, managed with the
    /// self-dispatching discipline (a receiver always remains parked).
    receivers: ReceiverPool,
}

impl MsgServer {
    /// The served interface.
    pub fn interface(&self) -> &Arc<CompiledInterface> {
        &self.interface
    }

    /// The server domain.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// The request port.
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// The concrete-thread pool.
    pub fn receivers(&self) -> &ReceiverPool {
        &self.receivers
    }
}

/// What a completed message RPC reports.
#[derive(Debug)]
pub struct MsgCallOutcome {
    /// Return value.
    pub ret: Option<Value>,
    /// Out-parameter values.
    pub outs: Vec<(usize, Value)>,
    /// Virtual round-trip time on the calling thread.
    pub elapsed: Nanos,
    /// Phase breakdown.
    pub meter: Meter,
    /// Copy operations performed (Table 3).
    pub copies: CopyLog,
}

/// A message-passing RPC system (one cost model + copy variant).
pub struct MsgRpcSystem {
    kernel: Arc<Kernel>,
    cost: MsgRpcCost,
    names: NameServer<Arc<MsgServer>>,
    /// SRC RPC's single lock, "mapped into all domains so that message
    /// buffers can be acquired and released without kernel involvement".
    global_lock: Mutex<()>,
}

impl MsgRpcSystem {
    /// Creates a system over the given kernel with the given cost model.
    pub fn new(kernel: Arc<Kernel>, cost: MsgRpcCost) -> Arc<MsgRpcSystem> {
        Arc::new(MsgRpcSystem {
            kernel,
            cost,
            names: NameServer::new(),
            global_lock: Mutex::new(()),
        })
    }

    /// The kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The cost model.
    pub fn cost(&self) -> &MsgRpcCost {
        &self.cost
    }

    /// Exports an interface from `domain` with `n_threads` concrete server
    /// threads.
    pub fn export(
        &self,
        domain: &Arc<Domain>,
        idl_src: &str,
        handlers: Vec<MsgHandler>,
        n_threads: usize,
    ) -> Result<Arc<MsgServer>, CallError> {
        let def = idl::parse(idl_src)
            .map_err(|e| CallError::ServerFault(format!("interface parse error: {e}")))?;
        let interface = Arc::new(compile(&def));
        if interface.procs.len() != handlers.len() {
            return Err(CallError::ServerFault(format!(
                "{} procedures but {} handlers",
                interface.procs.len(),
                handlers.len()
            )));
        }
        let server = Arc::new(MsgServer {
            domain: Arc::clone(domain),
            interface,
            handlers,
            port: Port::new(16),
            receivers: ReceiverPool::new(Arc::clone(&self.kernel), Arc::clone(domain), n_threads),
        });
        self.names.register(def.name, Arc::clone(&server));
        Ok(server)
    }

    /// Binds to an exported service by name.
    pub fn bind(&self, name: &str) -> Result<Arc<MsgServer>, CallError> {
        self.names
            .import_wait(name, Duration::from_secs(2))
            .ok_or_else(|| CallError::ImportTimeout {
                name: name.to_string(),
            })
    }

    /// Makes a message-based RPC.
    pub fn call(
        &self,
        client: &Arc<Domain>,
        thread: &Arc<Thread>,
        server: &Arc<MsgServer>,
        cpu_id: usize,
        proc: &str,
        args: &[Value],
    ) -> Result<MsgCallOutcome, CallError> {
        let index = server
            .interface
            .procs
            .iter()
            .position(|p| p.name == proc)
            .ok_or(CallError::BadProcedure { index: usize::MAX })?;
        self.call_indexed(client, thread, server, cpu_id, index, args, true)
    }

    /// Makes a message-based RPC by procedure index, optionally metered.
    #[expect(clippy::too_many_arguments)]
    pub fn call_indexed(
        &self,
        client: &Arc<Domain>,
        thread: &Arc<Thread>,
        server: &Arc<MsgServer>,
        cpu_id: usize,
        proc_index: usize,
        args: &[Value],
        metered: bool,
    ) -> Result<MsgCallOutcome, CallError> {
        let machine: &Arc<Machine> = self.kernel.machine();
        let cost = self.cost;
        let cpu = machine.cpu(cpu_id);
        let mut meter = if metered {
            Meter::enabled()
        } else {
            Meter::disabled()
        };
        // Every message RPC is a flight-recordable unit too: stamp a fresh
        // trace id so its spans can be isolated in the recorder.
        meter.set_trace(firefly::meter::TraceId::next());
        let mut copies = CopyLog::new();
        let start = cpu.now();

        let proc: &CompiledProc = server
            .interface
            .procs
            .get(proc_index)
            .ok_or(CallError::BadProcedure { index: proc_index })?;
        if !server.domain.is_active() {
            return Err(CallError::DomainDead);
        }

        // Start in the client's context.
        cpu.switch_context(client.ctx().id(), machine.cost(), &mut meter);

        // The formal call into the client stub.
        charge(
            cpu,
            &mut meter,
            Phase::ProcedureCall,
            cost.hw.procedure_call,
        );

        // Client stub: marshal every argument into the message (copy A) —
        // unless a register window covers the whole payload (Karger-style
        // register passing), in which case the values travel in registers
        // with no message copies at all.
        let stubs_call = frac(cost.stubs, 60);
        charge(cpu, &mut meter, Phase::Marshal, stubs_call);
        let payload = marshal::marshal_args(proc, args)?;
        let n_in = proc.def.params.iter().filter(|p| p.dir.is_in()).count() as u64;
        let in_registers = cost.register_window.is_some_and(|w| payload.len() <= w);
        if in_registers {
            // One register load per four payload bytes.
            let regs = payload.len().div_ceil(4) as u64;
            charge(cpu, &mut meter, Phase::ArgCopy, cost.per_register_op * regs);
        } else {
            charge(cpu, &mut meter, Phase::Marshal, cost.per_marshal_op * n_in);
            charge(
                cpu,
                &mut meter,
                Phase::Marshal,
                cost.per_byte_in * payload.len() as u64,
            );
            if n_in > 0 {
                copies.record(CopyOp::A, payload.len());
            }
        }
        let mut msg = Message::call(proc_index, payload);

        // Message buffer management — under the global lock for the
        // shared-buffer variant.
        let shared = cost.variant == CopyVariant::SharedBuffers;
        let lock_guard = if shared {
            Some(self.global_lock.lock())
        } else {
            None
        };
        let lock_label = if shared { Some(GLOBAL_RPC_LOCK) } else { None };
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::BufferManagement,
            frac(cost.buffer_mgmt, 50),
            lock_label,
        );

        // Kernel trap, access validation, transfer.
        self.kernel.trap(cpu, &mut meter);
        charge(
            cpu,
            &mut meter,
            Phase::Validation,
            frac(cost.validation, 50),
        );
        match cost.variant {
            CopyVariant::FullCopy if !msg.is_empty() && !in_registers => {
                // Client message → kernel buffer → server message.
                msg = msg.copy_hop();
                copies.record(CopyOp::B, msg.len());
                msg = msg.copy_hop();
                copies.record(CopyOp::C, msg.len());
            }
            CopyVariant::Restricted if !msg.is_empty() && !in_registers => {
                // One copy through the specially mapped region.
                msg = msg.copy_hop();
                copies.record(CopyOp::D, msg.len());
            }
            CopyVariant::FullCopy | CopyVariant::Restricted => {}
            CopyVariant::SharedBuffers => {
                // Globally shared buffers: no transfer copy at all.
            }
        }
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::MessageTransfer,
            frac(cost.transfer, 60),
            lock_label,
        );

        // Enqueue on the server's port.
        if !server.port.enqueue(msg, Duration::from_secs(2)) {
            return Err(CallError::ServerFault(
                "server port full (flow control)".into(),
            ));
        }

        // Rendezvous: block the client's concrete thread, select one of the
        // server's. For the shared-buffer variant, the portion of
        // scheduling work under the global lock is whatever the model's
        // `global_lock_held` leaves after buffer, transfer and dispatch.
        let sched_locked_total = if shared {
            cost.global_lock_held
                .saturating_sub(cost.buffer_mgmt + cost.transfer + frac(cost.dispatch, 70))
                .min(cost.scheduling)
        } else {
            Nanos::ZERO
        };
        let sched_half = frac(cost.scheduling, 50);
        let call_locked = sched_half.min(sched_locked_total);
        thread.set_status(ThreadStatus::Blocked);
        charge_maybe_locked(cpu, &mut meter, Phase::Scheduling, call_locked, lock_label);
        charge(cpu, &mut meter, Phase::Scheduling, sched_half - call_locked);
        // A receiver self-dispatches; if it was the last, it must first
        // create a successor (extra dispatch-path work LRPC never does).
        let (server_thread, _action) = server.receivers.begin_dispatch();

        // Context switch into the server domain.
        cpu.switch_context(server.domain.ctx().id(), machine.cost(), &mut meter);

        // Receiver: dequeue, interpret, dispatch.
        let delivered = server
            .port
            .dequeue(Duration::from_secs(2))
            .ok_or_else(|| CallError::ServerFault("request message lost".into()))?;
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::Dispatch,
            frac(cost.dispatch, 70),
            lock_label,
        );
        drop(lock_guard);

        // Server stub: unmarshal into the server's stack (copy E), run.
        // Register-passed arguments are already where the procedure needs
        // them.
        charge(cpu, &mut meter, Phase::Marshal, frac(cost.stubs, 20));
        let vals = marshal::unmarshal_args(proc, &delivered.payload);
        if !delivered.is_empty() && !in_registers {
            copies.record(CopyOp::E, delivered.len());
        }
        let vals = match vals {
            Ok(v) => v,
            Err(e) => {
                // Unwind: the client thread resumes with the error.
                self.return_to_client(client, thread, server, &server_thread, cpu, &mut meter);
                return Err(e);
            }
        };
        // Run the handler on the server's concrete thread; a panicking
        // procedure is failure-isolated into a fault the client observes.
        let handler = &server.handlers[proc_index];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&vals)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "server procedure panicked".to_string());
                Err(CallError::ServerFault(format!(
                    "unhandled exception: {msg}"
                )))
            });
        let reply = match result {
            Ok(r) => r,
            Err(e) => {
                self.return_to_client(client, thread, server, &server_thread, cpu, &mut meter);
                return Err(e);
            }
        };

        // Server stub: the server places results directly into the reply
        // message.
        let n_out = proc.def.params.iter().filter(|p| p.dir.is_out()).count() as u64
            + u64::from(proc.def.ret.is_some());
        let reply_payload = marshal::marshal_reply(proc, reply.ret.as_ref(), &reply.outs)?;
        let out_in_registers = cost
            .register_window
            .is_some_and(|w| reply_payload.len() <= w);
        if out_in_registers {
            let regs = reply_payload.len().div_ceil(4) as u64;
            charge(cpu, &mut meter, Phase::ArgCopy, cost.per_register_op * regs);
        } else {
            charge(cpu, &mut meter, Phase::Marshal, cost.per_marshal_op * n_out);
            charge(
                cpu,
                &mut meter,
                Phase::Marshal,
                cost.per_byte_out * reply_payload.len() as u64,
            );
        }
        let mut reply_msg = Message::reply(proc_index, reply_payload);

        // Return transfer (second trap, reply copies, buffer release,
        // second half of validation/scheduling/dispatch).
        let lock_guard = if shared {
            Some(self.global_lock.lock())
        } else {
            None
        };
        self.kernel.trap(cpu, &mut meter);
        charge(
            cpu,
            &mut meter,
            Phase::Validation,
            frac(cost.validation, 50),
        );
        match cost.variant {
            CopyVariant::FullCopy if !reply_msg.is_empty() && !out_in_registers => {
                reply_msg = reply_msg.copy_hop();
                copies.record(CopyOp::B, reply_msg.len());
                reply_msg = reply_msg.copy_hop();
                copies.record(CopyOp::C, reply_msg.len());
            }
            CopyVariant::Restricted if !reply_msg.is_empty() && !out_in_registers => {
                reply_msg = reply_msg.copy_hop();
                copies.record(CopyOp::B, reply_msg.len());
            }
            CopyVariant::FullCopy | CopyVariant::Restricted => {}
            CopyVariant::SharedBuffers => {}
        }
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::MessageTransfer,
            frac(cost.transfer, 40),
            lock_label,
        );
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::BufferManagement,
            frac(cost.buffer_mgmt, 50),
            lock_label,
        );
        let return_half = cost.scheduling - sched_half;
        let return_locked = (sched_locked_total - call_locked).min(return_half);
        charge_maybe_locked(
            cpu,
            &mut meter,
            Phase::Scheduling,
            return_locked,
            lock_label,
        );
        charge(
            cpu,
            &mut meter,
            Phase::Scheduling,
            return_half - return_locked,
        );
        drop(lock_guard);

        // Back to the client.
        self.return_to_client(client, thread, server, &server_thread, cpu, &mut meter);
        charge(cpu, &mut meter, Phase::Dispatch, frac(cost.dispatch, 30));

        // Client stub: unmarshal results into their destination (copy F).
        charge(cpu, &mut meter, Phase::Marshal, frac(cost.stubs, 20));
        let (ret, outs) = marshal::unmarshal_reply(proc, &reply_msg.payload)?;
        if !reply_msg.is_empty() && !out_in_registers {
            copies.record(CopyOp::F, reply_msg.len());
        }

        Ok(MsgCallOutcome {
            ret,
            outs,
            elapsed: cpu.now() - start,
            meter,
            copies,
        })
    }

    fn return_to_client(
        &self,
        client: &Arc<Domain>,
        client_thread: &Arc<Thread>,
        server: &Arc<MsgServer>,
        server_thread: &Arc<Thread>,
        cpu: &Cpu,
        meter: &mut Meter,
    ) {
        cpu.switch_context(client.ctx().id(), self.kernel.machine().cost(), meter);
        server.receivers.end_dispatch(server_thread);
        client_thread.set_status(ThreadStatus::Running);
    }
}

fn charge(cpu: &Cpu, meter: &mut Meter, phase: Phase, amount: Nanos) {
    cpu.charge(amount);
    meter.record_span(phase, amount, cpu.now());
}

fn charge_maybe_locked(
    cpu: &Cpu,
    meter: &mut Meter,
    phase: Phase,
    amount: Nanos,
    lock: Option<&'static str>,
) {
    cpu.charge(amount);
    meter.record_locked_span(phase, amount, lock, cpu.now());
}

/// `pct` percent of `total`.
fn frac(total: Nanos, pct: u64) -> Nanos {
    Nanos::from_nanos(total.as_nanos() * pct / 100)
}
