//! Property tests for the message-RPC substrate.

use std::time::Duration;

use idl::stubgen::compile;
use idl::wire::Value;
use msgrpc::marshal::{marshal_args, marshal_reply, unmarshal_args, unmarshal_reply};
use msgrpc::{Message, Port};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Port FIFO + flow-control invariants.
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn port_is_fifo_under_arbitrary_interleaving(
        capacity in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 1..80),
    ) {
        let port = Port::new(capacity);
        let timeout = Duration::from_millis(1);
        let mut next_send = 0usize;
        let mut next_recv = 0usize;
        for enqueue in ops {
            if enqueue {
                let accepted = port.enqueue(Message::call(next_send, vec![]), timeout);
                // Accepted iff not full.
                prop_assert_eq!(accepted, next_send - next_recv < capacity);
                if accepted {
                    next_send += 1;
                }
            } else {
                match port.dequeue(timeout) {
                    Some(m) => {
                        prop_assert_eq!(m.proc_index, next_recv, "FIFO violated");
                        next_recv += 1;
                    }
                    None => prop_assert_eq!(next_send, next_recv, "dequeue failed non-empty"),
                }
            }
            prop_assert_eq!(port.depth(), next_send - next_recv);
        }
    }

    #[test]
    fn message_copy_hops_preserve_bytes(payload in proptest::collection::vec(any::<u8>(), 0..512),
                                        hops in 1usize..5) {
        let mut m = Message::call(3, payload.clone());
        for _ in 0..hops {
            m = m.copy_hop();
        }
        prop_assert_eq!(&m.payload[..], &payload[..]);
        prop_assert_eq!(m.proc_index, 3);
    }
}

// ----------------------------------------------------------------------
// Marshal/unmarshal round-trips over generated signatures.
// ----------------------------------------------------------------------

/// A generated signature: IDL source, call arguments, return value and
/// out-parameter values.
type Signature = (String, Vec<Value>, Option<Value>, Vec<(usize, Value)>);

/// A procedure with n_in int32 ins, one optional var-bytes, n_out int32
/// outs, optional ret — plus matching argument values.
fn signature_and_values() -> impl Strategy<Value = Signature> {
    (
        0usize..4,
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
        0usize..3,
        proptest::option::of(any::<i32>()),
        proptest::collection::vec(any::<i32>(), 8),
    )
        .prop_map(|(n_in, var, n_out, ret, ints)| {
            let mut params = Vec::new();
            let mut args = Vec::new();
            let mut outs = Vec::new();
            for (i, &v) in ints.iter().enumerate().take(n_in) {
                params.push(format!("a{i}: int32"));
                args.push(Value::Int32(v));
            }
            if let Some(v) = &var {
                params.push("data: var bytes[64]".to_string());
                args.push(Value::Var(v.clone()));
            }
            let base = args.len();
            for i in 0..n_out {
                params.push(format!("o{i}: out int32"));
                args.push(Value::Int32(0));
                outs.push((base + i, Value::Int32(ints[4 + i])));
            }
            let ret_clause = if ret.is_some() { " -> int32" } else { "" };
            let src = format!(
                "interface P {{ procedure F({}){}; }}",
                params.join(", "),
                ret_clause
            );
            (src, args, ret.map(Value::Int32), outs)
        })
}

proptest! {
    #[test]
    fn marshal_roundtrips_over_generated_signatures(
        (src, args, ret, outs) in signature_and_values()
    ) {
        let iface = compile(&idl::parse(&src).expect("generated IDL parses"));
        let proc = &iface.procs[0];

        // Call direction.
        let wire = marshal_args(proc, &args).expect("marshal");
        let back = unmarshal_args(proc, &wire).expect("unmarshal");
        for ((v, b), p) in args.iter().zip(&back).zip(&proc.def.params) {
            if p.dir.is_in() {
                prop_assert_eq!(v, b, "in-params roundtrip");
            }
        }

        // Reply direction.
        let reply = marshal_reply(proc, ret.as_ref(), &outs).expect("marshal reply");
        let (ret_back, outs_back) = unmarshal_reply(proc, &reply).expect("unmarshal reply");
        prop_assert_eq!(ret_back, ret);
        prop_assert_eq!(outs_back, outs);
    }

    #[test]
    fn unmarshal_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        (src, _, _, _) in signature_and_values(),
    ) {
        let iface = compile(&idl::parse(&src).expect("parses"));
        let _ = unmarshal_args(&iface.procs[0], &bytes);
        let _ = unmarshal_reply(&iface.procs[0], &bytes);
    }
}
