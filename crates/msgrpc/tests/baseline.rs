//! End-to-end tests of the message-RPC baselines against the paper.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::thread::Thread;
use kernel::Domain;
use lrpc::{CallError, Reply};
use msgrpc::{MsgHandler, MsgRpcCost, MsgRpcSystem, MsgServer};

const BENCH_IDL: &str = r#"
    interface Bench {
        procedure Null();
        procedure Add(a: int32, b: int32) -> int32;
        procedure BigIn(data: in bytes[200] noninterpreted);
        procedure BigInOut(data: inout bytes[200] noninterpreted);
    }
"#;

fn handlers() -> Vec<MsgHandler> {
    vec![
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                return Err(CallError::ServerFault("bad types".into()));
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }),
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|args: &[Value]| Ok(Reply::none().with_out(0, args[0].clone()))),
    ]
}

struct Env {
    system: Arc<MsgRpcSystem>,
    client: Arc<Domain>,
    thread: Arc<Thread>,
    server: Arc<MsgServer>,
}

fn setup(cost: MsgRpcCost) -> Env {
    let machine = Machine::new(1, CostModel::with_hw(cost.hw));
    let kernel = Kernel::new(machine);
    let system = MsgRpcSystem::new(kernel, cost);
    let server_domain = system.kernel().create_domain("msg-server");
    let server = system
        .export(&server_domain, BENCH_IDL, handlers(), 2)
        .unwrap();
    let client = system.kernel().create_domain("msg-client");
    let thread = system.kernel().spawn_thread(&client);
    Env {
        system,
        client,
        thread,
        server,
    }
}

fn steady(env: &Env, proc: &str, args: &[Value]) -> Nanos {
    env.system
        .call(&env.client, &env.thread, &env.server, 0, proc, args)
        .expect("warmup");
    env.system
        .call(&env.client, &env.thread, &env.server, 0, proc, args)
        .expect("measured")
        .elapsed
}

#[test]
fn src_rpc_null_takes_464_microseconds() {
    let env = setup(MsgRpcCost::src_rpc_taos());
    assert_eq!(steady(&env, "Null", &[]), Nanos::from_micros(464));
}

#[test]
fn table_2_null_actuals_reproduce() {
    for cost in MsgRpcCost::table_2_systems() {
        let env = setup(cost);
        let measured = steady(&env, "Null", &[]);
        assert_eq!(
            measured,
            cost.null_actual(),
            "{}: measured {measured} vs model {}",
            cost.name,
            cost.null_actual()
        );
    }
}

#[test]
fn table_4_taos_column_reproduces_within_one_percent() {
    let env = setup(MsgRpcCost::src_rpc_taos());
    let expect = [
        ("Null", vec![], 464u64),
        ("Add", vec![Value::Int32(1), Value::Int32(2)], 480),
        ("BigIn", vec![Value::Bytes(vec![9; 200])], 539),
        ("BigInOut", vec![Value::Bytes(vec![9; 200])], 636),
    ];
    for (proc, args, paper) in expect {
        let measured = steady(&env, proc, &args).as_micros_f64();
        let err = (measured - paper as f64).abs() / paper as f64;
        assert!(
            err < 0.01,
            "{proc}: measured {measured:.1}us vs paper {paper}us ({:.2}% off)",
            err * 100.0
        );
    }
}

#[test]
fn lrpc_is_a_factor_of_three_faster_than_src_rpc() {
    // The headline claim: 464 / 157 ≈ 2.96.
    let src = setup(MsgRpcCost::src_rpc_taos());
    let src_null = steady(&src, "Null", &[]).as_micros_f64();
    let lrpc_null = CostModel::cvax_firefly().lrpc_null_serial().as_micros_f64();
    let factor = src_null / lrpc_null;
    assert!((2.8..=3.2).contains(&factor), "factor was {factor:.2}");
}

#[test]
fn full_copy_call_performs_abce_and_return_bcf() {
    let env = setup(MsgRpcCost::mach_cvax());
    // In-only call: the copy chain is A, B, C, E (Table 3 row 1).
    let big_in = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "BigIn",
            &[Value::Bytes(vec![1; 200])],
        )
        .unwrap();
    assert_eq!(big_in.copies.letters_string(), "ABCE");
    // Return-only call: B, C, F (Table 3 row 3).
    let returns = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "Add",
            &[Value::Int32(1), Value::Int32(2)],
        )
        .unwrap();
    // Add has both directions; the return contributes B, C, F again plus
    // the call-direction ABCE.
    assert_eq!(returns.copies.letters_string(), "ABCEF");
    assert_eq!(
        returns.copies.count(),
        7,
        "message passing totals 7 copies (Table 3)"
    );
}

#[test]
fn restricted_copy_call_performs_ade_and_return_bf() {
    let env = setup(MsgRpcCost::dash_68020());
    let big_in = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "BigIn",
            &[Value::Bytes(vec![1; 200])],
        )
        .unwrap();
    assert_eq!(big_in.copies.letters_string(), "ADE");
    let both = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "Add",
            &[Value::Int32(1), Value::Int32(2)],
        )
        .unwrap();
    assert_eq!(
        both.copies.count(),
        5,
        "restricted message passing totals 5 copies (Table 3)"
    );
}

#[test]
fn shared_buffers_skip_transfer_copies_and_validation() {
    let env = setup(MsgRpcCost::src_rpc_taos());
    let out = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "BigIn",
            &[Value::Bytes(vec![1; 200])],
        )
        .unwrap();
    assert_eq!(
        out.copies.letters_string(),
        "AE",
        "globally shared buffers: no B/C/D hops"
    );
    assert_eq!(out.meter.total_for(Phase::Validation), Nanos::ZERO);
    // The global lock is held for a large part of the transfer path.
    let locked = out.meter.total_locked(msgrpc::GLOBAL_RPC_LOCK);
    assert_eq!(locked, Nanos::from_micros(250));
}

#[test]
fn results_roundtrip_through_messages() {
    let env = setup(MsgRpcCost::src_rpc_taos());
    let add = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "Add",
            &[Value::Int32(40), Value::Int32(2)],
        )
        .unwrap();
    assert_eq!(add.ret, Some(Value::Int32(42)));
    let payload = vec![0x5A; 200];
    let echo = env
        .system
        .call(
            &env.client,
            &env.thread,
            &env.server,
            0,
            "BigInOut",
            &[Value::Bytes(payload.clone())],
        )
        .unwrap();
    assert_eq!(echo.outs, vec![(0, Value::Bytes(payload))]);
}

#[test]
fn nonconforming_cardinal_is_rejected_after_the_copy() {
    let machine = Machine::new(1, CostModel::cvax_firefly());
    let kernel = Kernel::new(machine);
    let system = MsgRpcSystem::new(kernel, MsgRpcCost::src_rpc_taos());
    let sd = system.kernel().create_domain("s");
    let server = system
        .export(
            &sd,
            "interface C { procedure P(n: cardinal); }",
            vec![Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler],
            1,
        )
        .unwrap();
    let client = system.kernel().create_domain("c");
    let thread = system.kernel().spawn_thread(&client);
    let err = system
        .call(&client, &thread, &server, 0, "P", &[Value::Cardinal(-3)])
        .unwrap_err();
    assert!(matches!(err, CallError::Stub(_)), "got {err}");
    // The system keeps working afterwards.
    system
        .call(&client, &thread, &server, 0, "P", &[Value::Cardinal(3)])
        .unwrap();
}

#[test]
fn bind_by_name_and_unknown_names_fail() {
    let env = setup(MsgRpcCost::src_rpc_taos());
    assert!(env.system.bind("Bench").is_ok());
    assert!(matches!(
        env.system.bind("Nope"),
        Err(CallError::ImportTimeout { .. })
    ));
}

#[test]
fn register_passing_exhibits_the_footnote_discontinuity() {
    // Footnote 2: "Optimizations based on passing arguments in registers
    // exhibit a performance discontinuity once the parameters overflow
    // the registers."
    let machine = Machine::new(1, CostModel::with_hw(MsgRpcCost::v_with_registers().hw));
    let kernel = Kernel::new(machine);
    let system = MsgRpcSystem::new(kernel, MsgRpcCost::v_with_registers());
    let sd = system.kernel().create_domain("s");
    let server = system
        .export(
            &sd,
            r#"interface R {
                procedure Small(data: in bytes[28] noninterpreted);
                procedure Overflow(data: in bytes[36] noninterpreted);
            }"#,
            vec![
                Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler,
                Box::new(|_: &[Value]| Ok(Reply::none())) as MsgHandler,
            ],
            1,
        )
        .unwrap();
    let client = system.kernel().create_domain("c");
    let thread = system.kernel().spawn_thread(&client);
    let steady = |proc: &str, n: usize| {
        let args = [Value::Bytes(vec![0; n])];
        system
            .call(&client, &thread, &server, 0, proc, &args)
            .unwrap();
        system
            .call(&client, &thread, &server, 0, proc, &args)
            .unwrap()
    };
    let small = steady("Small", 28);
    let overflow = steady("Overflow", 36);
    // 28 bytes fit the 32-byte register window: no message copies at all.
    assert_eq!(
        small.copies.count(),
        0,
        "register-passed call performs no copies"
    );
    // 36 bytes overflow: the full buffer path, with all its copies.
    assert!(
        overflow.copies.count() >= 4,
        "overflow falls back to the copy chain"
    );
    // The discontinuity: 8 extra bytes cost far more than 8 bytes' worth.
    let jump = overflow.elapsed.as_micros_f64() - small.elapsed.as_micros_f64();
    assert!(
        jump > 10.0,
        "crossing the register window must jump discontinuously, got {jump:.1}us"
    );
}

#[test]
fn panicking_msg_handler_is_failure_isolated() {
    let machine = Machine::new(1, CostModel::cvax_firefly());
    let kernel = Kernel::new(machine);
    let system = MsgRpcSystem::new(kernel, MsgRpcCost::src_rpc_taos());
    let sd = system.kernel().create_domain("buggy");
    let server = system
        .export(
            &sd,
            "interface B { procedure Crash(); }",
            vec![
                Box::new(|_: &[Value]| -> Result<Reply, CallError> { panic!("server bug") })
                    as MsgHandler,
            ],
            1,
        )
        .unwrap();
    let client = system.kernel().create_domain("c");
    let thread = system.kernel().spawn_thread(&client);
    for _ in 0..3 {
        let err = system
            .call(&client, &thread, &server, 0, "Crash", &[])
            .unwrap_err();
        assert!(matches!(err, CallError::ServerFault(_)), "got {err}");
    }
    // The receiver pool stays consistent.
    assert!(server.receivers().invariant_holds());
    assert_eq!(server.receivers().working_count(), 0);
}
