//! Workload models for the LRPC reproduction.
//!
//! The paper's Section 2 argues from measurements of three operating
//! systems that cross-domain, small-argument calls are the common case.
//! The original traces (a five-hour Taos session, a four-day NFS trace,
//! Williamson's instrumented V kernel) are long gone; this crate provides
//! statistical models matched to every aggregate the paper publishes, so
//! the measurement sections can be regenerated:
//!
//! * [`activity`] — cross-domain vs cross-machine operation mixes
//!   (Table 1);
//! * [`sizes`] — the per-call argument/result byte distribution
//!   (Figure 1);
//! * [`corpus`] — a synthetic 28-service / 366-procedure interface corpus
//!   with the Section 2.2 static properties, plus the call-popularity
//!   model (75 % of calls to three procedures);
//! * [`site`] — site-scale open-loop traffic plans (hundreds of
//!   interfaces, tens of thousands of bindings, seeded exponential
//!   arrivals mixing serial/batch/bulk calls) for the tail benchmark.

pub mod activity;
pub mod corpus;
pub mod site;
pub mod sizes;
pub mod trace;

pub use activity::{count_ops, ActivityModel, Op, PercentBasis};
pub use corpus::{generate_corpus, measure, CorpusStats, PopularityModel};
pub use site::{generate_site, Arrival, CallKind, SitePlan, SiteSpec};
pub use sizes::{Histogram, SizeBin, SizeDistribution, FIGURE_1_MAX_BYTES, FIGURE_1_TOTAL_CALLS};
pub use trace::{CallEvent, CallTrace, TraceModel};
