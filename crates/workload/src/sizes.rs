//! Argument/result size distribution (Section 2.2, Figure 1).
//!
//! The paper measures 1,487,105 cross-domain calls over four days and
//! plots the total argument/result bytes per call: "the most frequently
//! occurring calls transfer fewer than 50 bytes, and a majority transfer
//! fewer than 200", with a maximum single transfer around 1448 bytes and
//! the cumulative distribution reaching 100 % by 1800.
//!
//! [`SizeDistribution::figure_1`] is an empirical mixture matched to those
//! published features; the samplers are seeded so experiments are
//! reproducible.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calls counted in the four-day Taos measurement.
pub const FIGURE_1_TOTAL_CALLS: u64 = 1_487_105;

/// The largest single transfer observed.
pub const FIGURE_1_MAX_BYTES: u32 = 1_448;

/// One bin of an empirical size distribution.
#[derive(Clone, Copy, Debug)]
pub struct SizeBin {
    /// Inclusive lower byte bound.
    pub lo: u32,
    /// Exclusive upper byte bound.
    pub hi: u32,
    /// Probability mass of the bin.
    pub weight: f64,
}

/// An empirical distribution over per-call transfer sizes.
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    bins: Vec<SizeBin>,
}

impl SizeDistribution {
    /// Builds a distribution from bins.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not sum to ≈ 1 or a bin is empty — the
    /// distributions in this crate are compile-time constants, so this is
    /// a programming error, not input validation.
    pub fn new(bins: Vec<SizeBin>) -> SizeDistribution {
        let total: f64 = bins.iter().map(|b| b.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "bin weights must sum to 1, got {total}"
        );
        assert!(
            bins.iter().all(|b| b.hi > b.lo),
            "bins must be non-empty ranges"
        );
        SizeDistribution { bins }
    }

    /// The Figure 1 distribution.
    pub fn figure_1() -> SizeDistribution {
        SizeDistribution::new(vec![
            SizeBin {
                lo: 0,
                hi: 50,
                weight: 0.36,
            },
            SizeBin {
                lo: 50,
                hi: 100,
                weight: 0.17,
            },
            SizeBin {
                lo: 100,
                hi: 200,
                weight: 0.12,
            },
            SizeBin {
                lo: 200,
                hi: 500,
                weight: 0.17,
            },
            SizeBin {
                lo: 500,
                hi: 750,
                weight: 0.08,
            },
            SizeBin {
                lo: 750,
                hi: 1000,
                weight: 0.044,
            },
            SizeBin {
                lo: 1000,
                hi: 1449,
                weight: 0.056,
            },
        ])
    }

    /// The bins.
    pub fn bins(&self) -> &[SizeBin] {
        &self.bins
    }

    /// Draws one size.
    pub fn sample_one(&self, rng: &mut StdRng) -> u32 {
        let mut u: f64 = rng.gen();
        for b in &self.bins {
            if u < b.weight {
                return rng.gen_range(b.lo..b.hi);
            }
            u -= b.weight;
        }
        // Floating-point slack lands in the last bin.
        let last = self.bins.last().expect("non-empty");
        rng.gen_range(last.lo..last.hi)
    }

    /// Draws `n` sizes with a fixed seed.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample_one(&mut rng)).collect()
    }

    /// Probability that a call transfers fewer than `bytes`.
    pub fn cumulative_below(&self, bytes: u32) -> f64 {
        let mut p = 0.0;
        for b in &self.bins {
            if b.hi <= bytes {
                p += b.weight;
            } else if b.lo < bytes {
                // Partial bin: uniform within the bin.
                p += b.weight * f64::from(bytes - b.lo) / f64::from(b.hi - b.lo);
            }
        }
        p
    }
}

impl Distribution<u32> for SizeDistribution {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut u: f64 = rng.gen();
        for b in &self.bins {
            if u < b.weight {
                return rng.gen_range(b.lo..b.hi);
            }
            u -= b.weight;
        }
        let last = self.bins.last().expect("non-empty");
        rng.gen_range(last.lo..last.hi)
    }
}

/// A histogram of observed sizes over fixed bucket edges (for printing
/// Figure 1).
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket edges, ascending; bucket `i` covers `edges[i]..edges[i+1]`.
    pub edges: Vec<u32>,
    /// Counts per bucket.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram of `samples` over Figure 1's x-axis buckets.
    pub fn figure_1_buckets(samples: &[u32]) -> Histogram {
        let edges = vec![0, 50, 200, 500, 750, 1000, 1450, 1800];
        let mut counts = vec![0u64; edges.len() - 1];
        for &s in samples {
            let i = match edges.iter().rposition(|&e| e <= s) {
                Some(i) if i < counts.len() => i,
                _ => counts.len() - 1,
            };
            counts[i] += 1;
        }
        Histogram { edges, counts }
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative share at each bucket's upper edge.
    pub fn cumulative(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_features_hold() {
        let d = SizeDistribution::figure_1();
        // Mode below 50 bytes.
        let first = d.bins()[0];
        assert!(first.hi == 50);
        assert!(d.bins().iter().all(|b| b.weight <= first.weight));
        // Majority below 200 bytes.
        assert!(d.cumulative_below(200) > 0.5, "{}", d.cumulative_below(200));
        // Everything below the Ethernet-ish maximum.
        assert!((d.cumulative_below(1449) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_respect_the_support() {
        let d = SizeDistribution::figure_1();
        let samples = d.sample(1, 50_000);
        assert!(samples.iter().all(|&s| s < 1449));
        assert!(samples.iter().any(|&s| s < 50));
        assert!(samples.iter().any(|&s| s > 1000));
    }

    #[test]
    fn sampled_histogram_matches_the_shape() {
        let d = SizeDistribution::figure_1();
        let samples = d.sample(7, 100_000);
        let h = Histogram::figure_1_buckets(&samples);
        assert_eq!(h.total(), 100_000);
        // First bucket (under 50) is the mode.
        assert!(h.counts[0] > *h.counts[1..].iter().max().unwrap());
        // Majority under 200 bytes.
        let cum = h.cumulative();
        assert!(cum[1] > 0.5, "cumulative at 200B = {}", cum[1]);
        // Nothing beyond 1450.
        assert_eq!(h.counts[6], 0);
    }

    #[test]
    fn cumulative_below_interpolates_within_bins() {
        let d = SizeDistribution::new(vec![SizeBin {
            lo: 0,
            hi: 100,
            weight: 1.0,
        }]);
        assert!((d.cumulative_below(50) - 0.5).abs() < 1e-9);
        assert_eq!(d.cumulative_below(0), 0.0);
        assert_eq!(d.cumulative_below(100), 1.0);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn bad_weights_are_rejected() {
        let _ = SizeDistribution::new(vec![SizeBin {
            lo: 0,
            hi: 10,
            weight: 0.5,
        }]);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SizeDistribution::figure_1();
        assert_eq!(d.sample(3, 100), d.sample(3, 100));
    }
}
