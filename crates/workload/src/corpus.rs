//! The synthetic interface corpus (Section 2.2).
//!
//! The paper studies SRC RPC "as used by the Taos operating system and its
//! clients ... 28 RPC services defining 366 procedures involving over 1000
//! parameters", and reports these static properties:
//!
//! * four out of five parameters were of fixed size known at compile time;
//! * sixty-five percent were four bytes or fewer;
//! * two-thirds of all procedures passed only parameters of fixed size;
//! * sixty percent transferred 32 or fewer bytes;
//! * no data types were recursively defined so as to require recursive
//!   marshaling by machine-generated code (recursive types were passed,
//!   but marshaled by system library procedures).
//!
//! And dynamically: 1,487,105 calls in four days hit 112 distinct
//! procedures; 95 % of calls went to ten procedures and 75 % to just
//! three, none of which needed to marshal complex arguments.
//!
//! [`generate_corpus`] constructs a corpus with exactly those static
//! properties out of real [`idl`] definitions, so the Section 2.2
//! statistics *emerge* from measuring the corpus with the same APIs the
//! stub generator uses.

use idl::ast::{InterfaceDef, Param, ProcDef};
use idl::types::{ComplexKind, Ty};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Services in the studied system.
pub const SERVICES: usize = 28;

/// Procedures across all services.
pub const PROCEDURES: usize = 366;

/// Distinct procedures actually called during the four-day trace.
pub const CALLED_PROCEDURES: usize = 112;

/// Builds the corpus: 28 interfaces, 366 procedures, 1060 parameters, with
/// the Section 2.2 static quotas baked in.
pub fn generate_corpus() -> Vec<InterfaceDef> {
    let mut procs: Vec<ProcDef> = Vec::with_capacity(PROCEDURES);
    let small = || Ty::Int32;
    let mut n = 0usize;
    let mut name = move |prefix: &str| {
        n += 1;
        format!("{prefix}{n:03}")
    };

    // Class S1: 135 small procedures with three scalar parameters
    // (all fixed, ≤ 32 bytes transferred).
    for _ in 0..135 {
        procs.push(ProcDef::new(
            name("Get"),
            vec![
                Param::value("handle", small()),
                Param::value("index", small()),
                Param::value("flags", small()),
            ],
            Some(Ty::Int32),
        ));
    }
    // Class S2: 85 small procedures with one scalar and one 16-byte array
    // (all fixed, ≤ 32 bytes).
    for _ in 0..85 {
        procs.push(ProcDef::new(
            name("Set"),
            vec![
                Param::value("handle", small()),
                Param::value("name", Ty::ByteArray(16)),
            ],
            Some(Ty::Int32),
        ));
    }
    // Class M: 24 fixed procedures that move more than 32 bytes.
    for _ in 0..24 {
        procs.push(ProcDef::new(
            name("Copy"),
            vec![
                Param::value("handle", small()),
                Param::value("block", Ty::ByteArray(64)),
            ],
            None,
        ));
    }
    // Class V: 122 procedures with at least one variable-size parameter.
    // 175 extra scalars and 50 extra mid-size fixed arrays are spread
    // round-robin; 90 of the procedures get a second variable parameter,
    // and 6 carry a complex (library-marshaled) type.
    for i in 0..122 {
        let mut params = vec![Param::value("buf", Ty::VarBytes(1024))];
        if i < 90 {
            params.push(Param::value("aux", Ty::VarBytes(256)));
        }
        // 175 scalars over 122 procedures: one each, plus a second for the
        // first 53.
        params.push(Param::value("handle", small()));
        if i < 53 {
            params.push(Param::value("offset", small()));
        }
        // 50 mid-size fixed arrays on the first 50.
        if i < 50 {
            params.push(Param::value("hdr", Ty::ByteArray(24)));
        }
        // 6 complex parameters, marshaled by library code.
        if i >= 116 {
            params.push(Param::value("props", Ty::Complex(ComplexKind::LinkedList)));
        }
        procs.push(ProcDef::new(name("Send"), params, None));
    }

    assert_eq!(procs.len(), PROCEDURES);

    // Distribute over 28 services round-robin so every service mixes
    // classes, then name them.
    let mut interfaces: Vec<InterfaceDef> = (0..SERVICES)
        .map(|i| InterfaceDef::new(format!("Service{i:02}"), Vec::new()))
        .collect();
    for (i, p) in procs.into_iter().enumerate() {
        interfaces[i % SERVICES].procs.push(p);
    }
    interfaces
}

/// Static statistics of a corpus, measured the way Section 2.2 reports
/// them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorpusStats {
    /// Total services.
    pub services: usize,
    /// Total procedures.
    pub procedures: usize,
    /// Total declared parameters.
    pub parameters: usize,
    /// Share of parameters with compile-time-known size.
    pub fixed_param_share: f64,
    /// Share of parameters of four bytes or fewer.
    pub small_param_share: f64,
    /// Share of procedures passing only fixed-size parameters.
    pub all_fixed_proc_share: f64,
    /// Share of procedures transferring 32 bytes or fewer.
    pub small_transfer_proc_share: f64,
    /// Parameters of complex (library-marshaled) type.
    pub complex_params: usize,
}

/// Measures a corpus.
pub fn measure(corpus: &[InterfaceDef]) -> CorpusStats {
    let procs: Vec<&ProcDef> = corpus.iter().flat_map(|i| &i.procs).collect();
    let params: Vec<&Param> = procs.iter().flat_map(|p| &p.params).collect();
    let n_params = params.len().max(1);
    let n_procs = procs.len().max(1);
    let fixed = params
        .iter()
        .filter(|p| p.ty.fixed_size().is_some())
        .count();
    let small = params
        .iter()
        .filter(|p| p.ty.fixed_size().is_some_and(|s| s <= 4))
        .count();
    let all_fixed = procs.iter().filter(|p| p.all_fixed_size()).count();
    let small_transfer = procs
        .iter()
        .filter(|p| p.fixed_transfer_bytes().is_some_and(|b| b <= 32))
        .count();
    let complex = params.iter().filter(|p| p.ty.is_complex()).count();
    CorpusStats {
        services: corpus.len(),
        procedures: procs.len(),
        parameters: params.len(),
        fixed_param_share: fixed as f64 / n_params as f64,
        small_param_share: small as f64 / n_params as f64,
        all_fixed_proc_share: all_fixed as f64 / n_procs as f64,
        small_transfer_proc_share: small_transfer as f64 / n_procs as f64,
        complex_params: complex,
    }
}

/// The dynamic call-popularity model: 75 % of calls to three procedures,
/// 95 % to ten, 112 distinct procedures called.
pub struct PopularityModel {
    weights: Vec<f64>,
}

impl PopularityModel {
    /// The Section 2.2 model.
    pub fn section_2_2() -> PopularityModel {
        // Top three procedures carry 75 %; the next seven bring the top
        // ten to 95 %; the remaining 102 share the last 5 %.
        let mut weights = vec![0.25; 3];
        weights.extend(std::iter::repeat_n(0.20 / 7.0, 7));
        weights.extend(std::iter::repeat_n(
            0.05 / (CALLED_PROCEDURES - 10) as f64,
            CALLED_PROCEDURES - 10,
        ));
        PopularityModel { weights }
    }

    /// Number of procedures that are ever called.
    pub fn called(&self) -> usize {
        self.weights.len()
    }

    /// Share of calls going to the `k` most popular procedures.
    pub fn top_share(&self, k: usize) -> f64 {
        self.weights.iter().take(k).sum()
    }

    /// Samples `n` calls, returning popularity ranks (0 = most popular).
    pub fn sample(&self, seed: u64, n: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = WeightedIndex::new(&self.weights).expect("positive weights");
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_matches_the_paper() {
        let corpus = generate_corpus();
        let stats = measure(&corpus);
        assert_eq!(stats.services, 28);
        assert_eq!(stats.procedures, 366);
        assert!(
            stats.parameters > 1000,
            "over 1000 parameters: {}",
            stats.parameters
        );
    }

    #[test]
    fn static_properties_match_section_2_2() {
        let stats = measure(&generate_corpus());
        // "Four out of five parameters were of fixed size."
        assert!(
            (stats.fixed_param_share - 0.80).abs() < 0.01,
            "{}",
            stats.fixed_param_share
        );
        // "Sixty-five percent were four bytes or fewer."
        assert!(
            (stats.small_param_share - 0.65).abs() < 0.01,
            "{}",
            stats.small_param_share
        );
        // "Two-thirds of all procedures passed only parameters of fixed size."
        assert!(
            (stats.all_fixed_proc_share - 2.0 / 3.0).abs() < 0.01,
            "{}",
            stats.all_fixed_proc_share
        );
        // "Sixty percent transferred 32 or fewer bytes."
        assert!(
            (stats.small_transfer_proc_share - 0.60).abs() < 0.01,
            "{}",
            stats.small_transfer_proc_share
        );
    }

    #[test]
    fn recursive_types_exist_but_only_behind_library_marshaling() {
        let corpus = generate_corpus();
        let stats = measure(&corpus);
        assert!(
            stats.complex_params > 0,
            "recursive types are passed through interfaces"
        );
        // Every complex parameter forces the Modula2+ (library) path in
        // the stub generator — never machine-generated recursion.
        for iface in &corpus {
            let compiled = idl::compile(iface);
            for (proc, compiled_proc) in iface.procs.iter().zip(&compiled.procs) {
                if proc.has_complex() {
                    assert_eq!(compiled_proc.lang, idl::StubLang::Modula2Plus);
                }
            }
        }
    }

    #[test]
    fn popularity_concentrates_like_the_trace() {
        let m = PopularityModel::section_2_2();
        assert_eq!(m.called(), 112);
        assert!((m.top_share(3) - 0.75).abs() < 1e-9);
        assert!((m.top_share(10) - 0.95).abs() < 1e-9);
        let calls = m.sample(11, 300_000);
        let mut counts = vec![0u64; m.called()];
        for c in &calls {
            counts[*c] += 1;
        }
        let total = calls.len() as f64;
        let top3: u64 = counts[..3].iter().sum();
        let top10: u64 = counts[..10].iter().sum();
        assert!((top3 as f64 / total - 0.75).abs() < 0.01);
        assert!((top10 as f64 / total - 0.95).abs() < 0.01);
        // All 112 procedures eventually get called.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn top_three_procedures_are_simple() {
        // "None of the stubs for these three were required to marshal
        // complex arguments — byte copying was sufficient." Ranks map onto
        // the corpus in declaration order, and the first procedures are
        // the small scalar ones.
        let corpus = generate_corpus();
        let all: Vec<&ProcDef> = corpus.iter().flat_map(|i| &i.procs).collect();
        // Round-robin distribution preserves class order per service; the
        // first three procedures of the flattened corpus are class S1.
        for p in all.iter().take(3) {
            assert!(p.all_fixed_size() && !p.has_complex());
        }
    }
}
