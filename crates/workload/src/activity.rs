//! Cross-domain vs cross-machine activity models (Section 2.1, Table 1).
//!
//! The paper instruments three systems and concludes that "most calls go
//! to targets on the same node":
//!
//! * **V** — "97% of calls crossed protection, but not machine,
//!   boundaries" (Williamson's instrumented kernel);
//! * **Taos** — "During one five-hour work period, we counted 344,888
//!   local RPC calls, but only 18,366 network RPCs. Cross-machine RPCs
//!   thus accounted for only 5.3% of all communication activity" (note:
//!   18,366 / 344,888 = 5.3 % — the paper divides by the *local* count);
//! * **UNIX+NFS** — "during a period of four days we observed over 100
//!   million operating system calls, but fewer than one million RPCs to
//!   file servers" (0.6 %).

use rand::distributions::{Bernoulli, Distribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One observed operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// A call crossing protection domains on the same machine.
    CrossDomain,
    /// A call crossing machine boundaries.
    CrossMachine,
}

/// How a model's published percentage was computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PercentBasis {
    /// Remote operations over all operations.
    OfTotal,
    /// Remote operations over local operations (the arithmetic the paper
    /// uses for the Taos measurement).
    OfLocal,
}

/// An instrumented-system activity model.
#[derive(Clone, Copy, Debug)]
pub struct ActivityModel {
    /// System name as printed in Table 1.
    pub system: &'static str,
    /// Observation period.
    pub period: &'static str,
    /// Local (cross-domain) operations observed.
    pub local_ops: u64,
    /// Remote (cross-machine) operations observed.
    pub remote_ops: u64,
    /// How the paper computed the percentage.
    pub basis: PercentBasis,
}

impl ActivityModel {
    /// The V system (Table 1: 3 %).
    ///
    /// Williamson reports the 97 % cross-domain share; absolute counts are
    /// synthetic (one million operations) at that ratio.
    pub const fn v_system() -> ActivityModel {
        ActivityModel {
            system: "V",
            period: "instrumented kernel (Williamson)",
            local_ops: 970_000,
            remote_ops: 30_000,
            basis: PercentBasis::OfTotal,
        }
    }

    /// Taos on the Firefly (Table 1: 5.3 %) — the paper's own five-hour
    /// measurement, with its remote/local arithmetic.
    pub const fn taos() -> ActivityModel {
        ActivityModel {
            system: "Taos",
            period: "five-hour work period",
            local_ops: 344_888,
            remote_ops: 18_366,
            basis: PercentBasis::OfLocal,
        }
    }

    /// Sun UNIX+NFS (Table 1: 0.6 %) — over 100 million system calls and
    /// fewer than one million file-server RPCs in four days.
    pub const fn unix_nfs() -> ActivityModel {
        ActivityModel {
            system: "Sun UNIX+NFS",
            period: "four days, diskless Sun-3",
            local_ops: 104_400_000,
            remote_ops: 600_000,
            basis: PercentBasis::OfTotal,
        }
    }

    /// The three Table 1 rows.
    pub fn table_1_systems() -> [ActivityModel; 3] {
        [
            ActivityModel::v_system(),
            ActivityModel::taos(),
            ActivityModel::unix_nfs(),
        ]
    }

    /// Total observed operations.
    pub fn total_ops(&self) -> u64 {
        self.local_ops + self.remote_ops
    }

    /// The percentage of operations that cross machine boundaries,
    /// computed the way the paper computed it.
    pub fn cross_machine_percent(&self) -> f64 {
        let denom = match self.basis {
            PercentBasis::OfTotal => self.total_ops(),
            PercentBasis::OfLocal => self.local_ops,
        };
        100.0 * self.remote_ops as f64 / denom as f64
    }

    /// The probability that any one operation is cross-machine.
    pub fn cross_machine_prob(&self) -> f64 {
        self.remote_ops as f64 / self.total_ops() as f64
    }

    /// Generates a synthetic operation stream with this model's mix.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Bernoulli::new(self.cross_machine_prob()).expect("probability in [0,1]");
        (0..n)
            .map(|_| {
                if dist.sample(&mut rng) {
                    Op::CrossMachine
                } else {
                    Op::CrossDomain
                }
            })
            .collect()
    }
}

/// Counts an operation stream the way an instrumented kernel would.
pub fn count_ops(ops: &[Op]) -> (u64, u64) {
    let remote = ops.iter().filter(|o| **o == Op::CrossMachine).count() as u64;
    (ops.len() as u64 - remote, remote)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_percentages_match_the_paper() {
        let rows = ActivityModel::table_1_systems();
        let expect = [("V", 3.0), ("Taos", 5.3), ("Sun UNIX+NFS", 0.6)];
        for (m, (name, pct)) in rows.iter().zip(expect) {
            assert_eq!(m.system, name);
            let got = (m.cross_machine_percent() * 10.0).round() / 10.0;
            assert_eq!(got, pct, "{name}: {}", m.cross_machine_percent());
        }
    }

    #[test]
    fn taos_counts_are_the_published_ones() {
        let t = ActivityModel::taos();
        assert_eq!(t.local_ops, 344_888);
        assert_eq!(t.remote_ops, 18_366);
    }

    #[test]
    fn sampled_streams_converge_to_the_model() {
        for m in ActivityModel::table_1_systems() {
            let ops = m.sample(42, 200_000);
            let (_, remote) = count_ops(&ops);
            let measured = 100.0 * remote as f64 / ops.len() as f64;
            let expected = 100.0 * m.cross_machine_prob();
            assert!(
                (measured - expected).abs() < 0.25,
                "{}: sampled {measured:.2}% vs model {expected:.2}%",
                m.system
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = ActivityModel::taos();
        assert_eq!(m.sample(7, 1000), m.sample(7, 1000));
        assert_ne!(m.sample(7, 1000), m.sample(8, 1000));
    }

    #[test]
    fn cross_domain_dominates_everywhere() {
        // The paper's conclusion: cross-domain activity dominates in every
        // measured system.
        for m in ActivityModel::table_1_systems() {
            assert!(m.cross_machine_prob() < 0.06, "{}", m.system);
        }
    }
}
