//! Site-scale open-loop traffic: the load model for the tail benchmark.
//!
//! The paper's measurements are aggregate means over a four-day trace;
//! modern RPC evaluation lives at p99/p999 under sustained load. This
//! module scales the Section 2.2 statistics from single calls to a
//! *site*: hundreds of interfaces, tens of thousands of bindings, and a
//! seeded **open-loop** arrival process over virtual time — arrivals
//! fire on their own schedule regardless of whether the system has
//! caught up, so queueing delay lands in the measured latency instead of
//! being absorbed by a closed loop that only issues when idle.
//!
//! Three paper-derived skews shape the traffic:
//!
//! * **interface popularity** follows the Section 2.2 concentration (75 %
//!   of calls to the top 3, 95 % to the top 10, the long tail sharing the
//!   rest — the same shape as [`PopularityModel::section_2_2`], defined
//!   for any interface count);
//! * **per-call procedure choice** mirrors the small-call dominance
//!   (3 of 4 serial calls are the scalar `Get`, the rest the 16-byte
//!   `Put`);
//! * **bulk payload sizes** are drawn from the Figure 1 byte histogram
//!   ([`SizeDistribution::figure_1`]), capped at the paper's 1448-byte
//!   maximum.
//!
//! The generator is pure: it emits a [`SitePlan`] — interface IDL
//! sources, a binding→interface map, and a time-ordered arrival list —
//! and knows nothing about the LRPC runtime. `bench::tail` executes the
//! plan; tests here pin determinism and the mix shares.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sizes::SizeDistribution;

/// Procedure index of the scalar `Get` (every interface).
pub const PROC_GET: usize = 0;
/// Procedure index of the 16-byte `Put` (every interface).
pub const PROC_PUT: usize = 1;
/// Procedure index of the variable-size `Send` (bulk-flavored only).
pub const PROC_SEND: usize = 2;

/// Largest `Send` payload: the Figure 1 maximum (1448 bytes) fits.
pub const SEND_MAX_BYTES: u32 = 1449;

/// Every `interfaces_per_bulk`-th interface carries the variable-size
/// `Send` procedure (and therefore a bulk arena at bind time); keeping
/// the rest scalar-only bounds arena memory at tens of thousands of
/// bindings.
pub const BULK_FLAVOR_STRIDE: usize = 4;

/// Fraction of serial calls that take the scalar `Get` (the rest `Put`).
pub const GET_SHARE: f64 = 0.75;

/// Parameters of one site traffic run. Everything that affects the
/// generated plan lives here, so equal specs generate byte-equal plans.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteSpec {
    /// RNG seed; the entire plan is a pure function of the spec.
    pub seed: u64,
    /// Distinct interfaces (hundreds at full scale).
    pub interfaces: usize,
    /// Client bindings, assigned round-robin over interfaces.
    pub bindings: usize,
    /// Open-loop arrivals to generate (a batch arrival is one arrival
    /// carrying `batch_size` calls).
    pub arrivals: usize,
    /// Mean of the exponential inter-arrival gap, virtual ns.
    pub mean_interarrival_ns: u64,
    /// Fraction of arrivals submitted as a `call_batch` ring flush.
    pub batch_share: f64,
    /// Fraction of arrivals that send a Figure-1-sized bulk payload.
    pub bulk_share: f64,
    /// Calls per batch arrival.
    pub batch_size: usize,
    /// Width of the latency time-series window, virtual ns.
    pub window_ns: u64,
}

impl SiteSpec {
    /// Full-scale run: hundreds of interfaces, tens of thousands of
    /// bindings. Mean service per arrival is ~220 us on the C-VAX model
    /// (serial calls are Null-class at 157 us, a batch arrival is an
    /// 8-call burst), so the 320 us mean gap offers ~0.7 utilization:
    /// queues form behind bursts and drain, instead of diverging.
    pub fn full() -> SiteSpec {
        SiteSpec {
            seed: 42,
            interfaces: 200,
            bindings: 20_000,
            arrivals: 30_000,
            mean_interarrival_ns: 320_000,
            batch_share: 0.10,
            bulk_share: 0.15,
            batch_size: 8,
            window_ns: 250_000_000,
        }
    }

    /// CI-sized run: same shape, ~8× fewer arrivals, small enough for a
    /// gate job but large enough that p999 is a real rank (> 10 calls
    /// above it).
    pub fn ci() -> SiteSpec {
        SiteSpec {
            seed: 42,
            interfaces: 40,
            bindings: 2_000,
            arrivals: 4_000,
            mean_interarrival_ns: 320_000,
            batch_share: 0.10,
            bulk_share: 0.15,
            batch_size: 8,
            window_ns: 100_000_000,
        }
    }
}

/// What one arrival asks the system to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// One synchronous call of the given procedure index.
    Serial { proc: usize },
    /// `calls` scalar `Get`s through the submission ring, one doorbell.
    Batch { calls: usize },
    /// One `Send` carrying a Figure-1-sized payload through the bulk
    /// arena.
    Bulk { bytes: u32 },
}

/// One open-loop arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual time at which the client issues the call(s).
    pub at_ns: u64,
    /// Which binding issues it.
    pub binding: usize,
    pub kind: CallKind,
}

/// A fully materialized traffic plan: pure data, runtime-agnostic.
#[derive(Clone, Debug)]
pub struct SitePlan {
    pub spec: SiteSpec,
    /// IDL source per interface, index = interface id.
    pub idls: Vec<String>,
    /// Whether each interface carries the `Send` procedure.
    pub bulk_flavored: Vec<bool>,
    /// Time-ordered arrivals (nondecreasing `at_ns`).
    pub arrivals: Vec<Arrival>,
}

/// Interface `i`'s exported name.
pub fn interface_name(i: usize) -> String {
    format!("Site{i:03}")
}

fn interface_idl(i: usize, bulk: bool, _batch_size: usize) -> String {
    // Every count is the static import-time guess of 2. Batch traffic
    // genuinely wants one A-stack per in-flight ring descriptor, but that
    // is a *workload* property: the adaptive sizing controller
    // (`lrpc::adapt`) learns it from observed occupancy and stall events
    // and overrides these guesses on the next import — the static-vs-
    // adaptive comparison in the tail benchmark measures exactly that gap.
    let get_astacks = 2;
    let mut out = format!(
        "interface {} {{\n\
         [astacks = {get_astacks}] procedure Get(handle: int32, index: int32) -> int32;\n\
         [astacks = 2] procedure Put(handle: int32, name: bytes[16]) -> int32;\n",
        interface_name(i)
    );
    if bulk {
        out.push_str(&format!(
            "[astacks = 2] procedure Send(data: in var bytes[{SEND_MAX_BYTES}] noninterpreted) \
             -> int32;\n"
        ));
    }
    out.push('}');
    out
}

/// The Section 2.2 popularity shape generalized to `n` interfaces: the
/// top 3 split 75 %, the next (up to) 7 split 20 %, everyone else splits
/// 5 %. Degenerates to uniform below 4 interfaces. Weights are relative;
/// `WeightedIndex` normalizes.
pub fn interface_weights(n: usize) -> Vec<f64> {
    if n < 4 {
        return vec![1.0; n];
    }
    let mut w = vec![0.0f64; n];
    for slot in w.iter_mut().take(3) {
        *slot = 0.75 / 3.0;
    }
    let mid = (n - 3).min(7);
    for slot in w.iter_mut().skip(3).take(mid) {
        *slot = 0.20 / mid as f64;
    }
    let rest = n - 3 - mid;
    for slot in w.iter_mut().skip(3 + mid) {
        *slot = 0.05 / rest as f64;
    }
    w
}

/// Generates the plan for `spec`. Pure: equal specs yield equal plans.
///
/// # Panics
/// If the spec is degenerate: zero interfaces/bindings, fewer bindings
/// than interfaces, a batch size of 0, or mix shares outside `[0, 1]`.
pub fn generate_site(spec: &SiteSpec) -> SitePlan {
    assert!(spec.interfaces > 0, "need at least one interface");
    assert!(
        spec.bindings >= spec.interfaces,
        "round-robin assignment needs bindings >= interfaces"
    );
    assert!(spec.batch_size > 0, "batch arrivals need a batch size");
    assert!(
        (0.0..=1.0).contains(&(spec.batch_share + spec.bulk_share)),
        "mix shares must sum within [0, 1]"
    );

    let bulk_flavored: Vec<bool> = (0..spec.interfaces)
        .map(|i| i % BULK_FLAVOR_STRIDE == 0)
        .collect();
    let idls: Vec<String> = (0..spec.interfaces)
        .map(|i| interface_idl(i, bulk_flavored[i], spec.batch_size))
        .collect();

    // Bindings are assigned round-robin: binding b serves interface
    // b % interfaces, so interface i owns bindings {i, i+n, i+2n, ...}.
    let per_iface: Vec<usize> = (0..spec.interfaces)
        .map(|i| spec.bindings / spec.interfaces + usize::from(i < spec.bindings % spec.interfaces))
        .collect();

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let iface_pick =
        WeightedIndex::new(interface_weights(spec.interfaces)).expect("non-empty weights");
    let payload = SizeDistribution::figure_1();

    let mut arrivals = Vec::with_capacity(spec.arrivals);
    let mut t: u64 = 0;
    for _ in 0..spec.arrivals {
        // Open-loop exponential gap; >= 1 ns so time strictly advances.
        let u: f64 = rng.gen();
        let gap = (-(spec.mean_interarrival_ns as f64) * (1.0 - u).ln()).round() as u64;
        t += gap.max(1);

        let iface = iface_pick.sample(&mut rng);
        let slot = rng.gen_range(0..per_iface[iface]);
        let binding = iface + slot * spec.interfaces;

        // Disjoint mix ranges; a roll whose kind needs a flavor the
        // chosen interface lacks degrades to the serial mix rather than
        // re-rolling the interface (popularity stays authoritative) or
        // leaking into the other special kind's share.
        let r: f64 = rng.gen();
        let serial = |rng: &mut StdRng| CallKind::Serial {
            proc: if rng.gen::<f64>() < GET_SHARE {
                PROC_GET
            } else {
                PROC_PUT
            },
        };
        let kind = if r < spec.bulk_share {
            if bulk_flavored[iface] {
                CallKind::Bulk {
                    bytes: payload.sample_one(&mut rng).min(SEND_MAX_BYTES - 1),
                }
            } else {
                serial(&mut rng)
            }
        } else if r < spec.bulk_share + spec.batch_share {
            if bulk_flavored[iface] {
                serial(&mut rng)
            } else {
                CallKind::Batch {
                    calls: spec.batch_size,
                }
            }
        } else {
            serial(&mut rng)
        };
        arrivals.push(Arrival {
            at_ns: t,
            binding,
            kind,
        });
    }

    SitePlan {
        spec: spec.clone(),
        idls,
        bulk_flavored,
        arrivals,
    }
}

impl SitePlan {
    /// The interface a binding serves.
    pub fn binding_interface(&self, binding: usize) -> usize {
        binding % self.spec.interfaces
    }

    /// Total individual calls the plan issues (batches expanded).
    pub fn total_calls(&self) -> usize {
        self.arrivals
            .iter()
            .map(|a| match a.kind {
                CallKind::Batch { calls } => calls,
                _ => 1,
            })
            .sum()
    }

    /// Distinct bindings the plan actually touches.
    pub fn touched_bindings(&self) -> usize {
        let mut seen: Vec<usize> = self.arrivals.iter().map(|a| a.binding).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SiteSpec {
        SiteSpec {
            seed: 7,
            interfaces: 8,
            bindings: 80,
            arrivals: 2_000,
            mean_interarrival_ns: 100_000,
            batch_share: 0.10,
            bulk_share: 0.15,
            batch_size: 4,
            window_ns: 1_000_000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_site(&tiny());
        let b = generate_site(&tiny());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.idls, b.idls);
        let mut other = tiny();
        other.seed = 8;
        assert_ne!(generate_site(&other).arrivals, a.arrivals);
    }

    #[test]
    fn arrivals_are_time_ordered_and_in_range() {
        let plan = generate_site(&tiny());
        let spec = &plan.spec;
        let mut last = 0;
        for a in &plan.arrivals {
            assert!(a.at_ns > last, "virtual time must strictly advance");
            last = a.at_ns;
            assert!(a.binding < spec.bindings);
            match a.kind {
                CallKind::Serial { proc } => assert!(proc <= PROC_PUT),
                CallKind::Batch { calls } => {
                    assert_eq!(calls, spec.batch_size);
                    assert!(
                        !plan.bulk_flavored[plan.binding_interface(a.binding)],
                        "batches ride small-flavor interfaces"
                    );
                }
                CallKind::Bulk { bytes } => {
                    assert!(bytes < SEND_MAX_BYTES);
                    assert!(
                        plan.bulk_flavored[plan.binding_interface(a.binding)],
                        "bulk sends need the Send procedure"
                    );
                }
            }
        }
    }

    #[test]
    fn popularity_concentrates_on_top_interfaces() {
        let plan = generate_site(&tiny());
        let n = plan.spec.interfaces;
        let mut per_iface = vec![0usize; n];
        for a in &plan.arrivals {
            per_iface[plan.binding_interface(a.binding)] += 1;
        }
        let top3: usize = per_iface[..3].iter().sum();
        let share = top3 as f64 / plan.arrivals.len() as f64;
        assert!(
            (0.65..0.85).contains(&share),
            "top-3 share {share} should be near 0.75"
        );
    }

    #[test]
    fn mix_shares_are_respected() {
        let plan = generate_site(&tiny());
        let total = plan.arrivals.len() as f64;
        let batches = plan
            .arrivals
            .iter()
            .filter(|a| matches!(a.kind, CallKind::Batch { .. }))
            .count() as f64;
        let bulks = plan
            .arrivals
            .iter()
            .filter(|a| matches!(a.kind, CallKind::Bulk { .. }))
            .count() as f64;
        // Flavor mismatches degrade to serial, so observed shares run a
        // little under the spec knobs; they must not exceed them.
        assert!(batches / total <= 0.10 + 0.02);
        assert!(bulks / total <= 0.15 + 0.02);
        assert!(batches > 0.0 && bulks > 0.0);
    }

    #[test]
    fn idls_declare_the_flavor_split() {
        let plan = generate_site(&tiny());
        for (i, idl) in plan.idls.iter().enumerate() {
            assert!(idl.contains(&interface_name(i)));
            assert_eq!(idl.contains("procedure Send"), plan.bulk_flavored[i]);
        }
        assert_eq!(plan.spec.interfaces.div_ceil(BULK_FLAVOR_STRIDE), {
            plan.bulk_flavored.iter().filter(|&&b| b).count()
        });
    }

    #[test]
    fn weights_generalize_the_section_2_2_shape() {
        let w = interface_weights(200);
        let total: f64 = w.iter().sum();
        let top3: f64 = w[..3].iter().sum();
        let top10: f64 = w[..10].iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((top3 - 0.75).abs() < 1e-9);
        assert!((top10 - 0.95).abs() < 1e-9);
        assert_eq!(interface_weights(2), vec![1.0, 1.0]);
    }
}
