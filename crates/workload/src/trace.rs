//! Full call-trace generation.
//!
//! Combines the three measured dimensions of Section 2 — how often calls
//! cross machines (Table 1), how big they are (Figure 1), and how
//! concentrated they are on a few procedures (Section 2.2) — into one
//! synthetic trace that a transport can replay. This is the closest
//! equivalent to the paper's original four-day Taos trace that the
//! published aggregates allow reconstructing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::activity::ActivityModel;
use crate::corpus::PopularityModel;
use crate::sizes::SizeDistribution;

/// One call in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallEvent {
    /// Popularity rank of the procedure called (0 = most popular).
    pub proc_rank: usize,
    /// Total argument/result bytes the call transfers.
    pub bytes: u32,
    /// True if the call crosses machine boundaries.
    pub remote: bool,
}

/// A generated trace.
#[derive(Clone, Debug)]
pub struct CallTrace {
    /// Events in arrival order.
    pub events: Vec<CallEvent>,
}

impl CallTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Share of remote calls.
    pub fn remote_share(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().filter(|e| e.remote).count() as f64 / self.events.len() as f64
    }

    /// Mean transfer size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| f64::from(e.bytes)).sum::<f64>() / self.events.len() as f64
    }

    /// Share of calls going to the top `k` procedures.
    pub fn top_share(&self, k: usize) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().filter(|e| e.proc_rank < k).count() as f64 / self.events.len() as f64
    }
}

/// A trace generator over the three measured dimensions.
pub struct TraceModel {
    /// Cross-machine mix.
    pub activity: ActivityModel,
    /// Per-call transfer sizes.
    pub sizes: SizeDistribution,
    /// Procedure popularity.
    pub popularity: PopularityModel,
}

impl TraceModel {
    /// The Taos-like model of the paper's own measurements.
    pub fn taos() -> TraceModel {
        TraceModel {
            activity: ActivityModel::taos(),
            sizes: SizeDistribution::figure_1(),
            popularity: PopularityModel::section_2_2(),
        }
    }

    /// Generates `n` calls with a fixed seed.
    pub fn generate(&self, seed: u64, n: usize) -> CallTrace {
        let mut size_rng = StdRng::seed_from_u64(seed ^ 0x5153_455A);
        let ranks = self.popularity.sample(seed ^ 0x504F_5055, n);
        let remotes = self.activity.sample(seed ^ 0x4143_5449, n);
        let events = ranks
            .into_iter()
            .zip(remotes)
            .map(|(proc_rank, op)| CallEvent {
                proc_rank,
                bytes: self.sizes.sample_one(&mut size_rng),
                remote: op == crate::activity::Op::CrossMachine,
            })
            .collect();
        CallTrace { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taos_trace_matches_all_three_dimensions() {
        let trace = TraceModel::taos().generate(7, 100_000);
        assert_eq!(trace.len(), 100_000);
        // Table 1: ~5% of operations are remote.
        let remote = trace.remote_share();
        assert!((0.04..=0.06).contains(&remote), "remote share {remote}");
        // Section 2.2: 75% of calls to three procedures.
        let top3 = trace.top_share(3);
        assert!((0.73..=0.77).contains(&top3), "top-3 share {top3}");
        // Figure 1: mean size in the low hundreds of bytes.
        let mean = trace.mean_bytes();
        assert!((150.0..=350.0).contains(&mean), "mean bytes {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let m = TraceModel::taos();
        assert_eq!(m.generate(1, 1000).events, m.generate(1, 1000).events);
        assert_ne!(m.generate(1, 1000).events, m.generate(2, 1000).events);
    }

    #[test]
    fn empty_trace_stats_are_safe() {
        let t = CallTrace { events: Vec::new() };
        assert!(t.is_empty());
        assert_eq!(t.remote_share(), 0.0);
        assert_eq!(t.mean_bytes(), 0.0);
        assert_eq!(t.top_share(3), 0.0);
    }
}
